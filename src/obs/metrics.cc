#include "obs/metrics.h"

#include <cmath>
#include <fstream>

#include "util/logging.h"

namespace csce {
namespace obs {
namespace {

std::atomic<uint64_t> g_next_epoch{1};

/// Thread-local shard directory: one entry per (thread, registry) pair
/// this thread has touched. Entries are validated by epoch, so a stale
/// entry for a destroyed registry can never be confused with a new
/// registry that happens to reuse the address.
struct TlsEntry {
  const void* registry;
  uint64_t epoch;
  void* shard;
};
thread_local std::vector<TlsEntry> t_shards;

}  // namespace

size_t HistogramData::BucketOf(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN and negatives
  int exp = static_cast<int>(std::ceil(std::log2(value)));
  if (exp < 1) return 1;
  if (exp >= static_cast<int>(HistogramData::kBuckets)) {
    return HistogramData::kBuckets - 1;
  }
  return static_cast<size_t>(exp);
}

MetricRegistry::MetricRegistry()
    : epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed)) {}

MetricRegistry::~MetricRegistry() = default;

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

uint32_t MetricRegistry::Register(std::string_view name, Kind kind) {
  MutexLock lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const MetricInfo& info = metrics_[it->second];
    CSCE_CHECK(info.kind == kind)
        << "metric '" << info.name << "' registered with two kinds";
    return info.slot;
  }
  uint32_t slot = 0;
  switch (kind) {
    case Kind::kCounter:
      CSCE_CHECK(next_counter_ < kMaxCounters) << "counter space exhausted";
      slot = next_counter_++;
      break;
    case Kind::kGauge:
      CSCE_CHECK(next_gauge_ < kMaxGauges) << "gauge space exhausted";
      slot = next_gauge_++;
      break;
    case Kind::kHistogram:
      CSCE_CHECK(next_histogram_ < kMaxHistograms)
          << "histogram space exhausted";
      slot = next_histogram_++;
      break;
  }
  by_name_.emplace(std::string(name),
                   static_cast<uint32_t>(metrics_.size()));
  metrics_.push_back(MetricInfo{std::string(name), kind, slot});
  return slot;
}

Counter MetricRegistry::counter(std::string_view name) {
  return Counter(this, Register(name, Kind::kCounter));
}

Gauge MetricRegistry::gauge(std::string_view name) {
  return Gauge(this, Register(name, Kind::kGauge));
}

Histogram MetricRegistry::histogram(std::string_view name) {
  return Histogram(this, Register(name, Kind::kHistogram));
}

MetricRegistry::Shard* MetricRegistry::ShardForThisThread() {
  for (const TlsEntry& entry : t_shards) {
    if (entry.registry == this && entry.epoch == epoch_) {
      return static_cast<Shard*>(entry.shard);
    }
  }
  MutexLock lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_shards.push_back(TlsEntry{this, epoch_, shard});
  return shard;
}

void Counter::Add(uint64_t n) const {
  if (registry_ == nullptr) return;
  registry_->ShardForThisThread()->counters[slot_].fetch_add(
      n, std::memory_order_relaxed);
}

void Gauge::Set(double value) const {
  if (registry_ == nullptr) return;
  registry_->gauge_values_[slot_].store(value, std::memory_order_relaxed);
}

void Gauge::SetMax(double value) const {
  if (registry_ == nullptr) return;
  std::atomic<double>& cell = registry_->gauge_values_[slot_];
  double current = cell.load(std::memory_order_relaxed);
  while (value > current &&
         !cell.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double value) const {
  if (registry_ == nullptr) return;
  MetricRegistry::HistogramCells& cells =
      registry_->ShardForThisThread()->histograms[slot_];
  // This thread is the only writer of its shard; relaxed load-modify-
  // store is safe, the atomics only make the aggregator's reads legal.
  uint64_t n = cells.count.load(std::memory_order_relaxed);
  if (n == 0 || value < cells.min.load(std::memory_order_relaxed)) {
    cells.min.store(value, std::memory_order_relaxed);
  }
  if (n == 0 || value > cells.max.load(std::memory_order_relaxed)) {
    cells.max.store(value, std::memory_order_relaxed);
  }
  cells.count.store(n + 1, std::memory_order_relaxed);
  cells.sum.store(cells.sum.load(std::memory_order_relaxed) + value,
                  std::memory_order_relaxed);
  cells.buckets[HistogramData::BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
}

void Histogram::Merge(const LocalHistogram& local) const {
  if (registry_ == nullptr || local.count == 0) return;
  MetricRegistry::HistogramCells& cells =
      registry_->ShardForThisThread()->histograms[slot_];
  uint64_t n = cells.count.load(std::memory_order_relaxed);
  if (n == 0 || local.min < cells.min.load(std::memory_order_relaxed)) {
    cells.min.store(local.min, std::memory_order_relaxed);
  }
  if (n == 0 || local.max > cells.max.load(std::memory_order_relaxed)) {
    cells.max.store(local.max, std::memory_order_relaxed);
  }
  cells.count.store(n + local.count, std::memory_order_relaxed);
  cells.sum.store(cells.sum.load(std::memory_order_relaxed) + local.sum,
                  std::memory_order_relaxed);
  for (size_t b = 0; b < local.buckets.size(); ++b) {
    if (local.buckets[b] > 0) {
      cells.buckets[b].fetch_add(local.buckets[b],
                                 std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const MetricInfo& info : metrics_) {
    switch (info.kind) {
      case Kind::kCounter: {
        uint64_t total = 0;
        for (const auto& shard : shards_) {
          total += shard->counters[info.slot].load(std::memory_order_relaxed);
        }
        snapshot.counters[info.name] = total;
        break;
      }
      case Kind::kGauge:
        snapshot.gauges[info.name] =
            gauge_values_[info.slot].load(std::memory_order_relaxed);
        break;
      case Kind::kHistogram: {
        HistogramData data;
        for (const auto& shard : shards_) {
          const HistogramCells& cells = shard->histograms[info.slot];
          uint64_t n = cells.count.load(std::memory_order_relaxed);
          if (n == 0) continue;
          double lo = cells.min.load(std::memory_order_relaxed);
          double hi = cells.max.load(std::memory_order_relaxed);
          if (data.count == 0 || lo < data.min) data.min = lo;
          if (data.count == 0 || hi > data.max) data.max = hi;
          data.count += n;
          data.sum += cells.sum.load(std::memory_order_relaxed);
          for (size_t b = 0; b < HistogramData::kBuckets; ++b) {
            data.buckets[b] +=
                cells.buckets[b].load(std::memory_order_relaxed);
          }
        }
        snapshot.histograms[info.name] = data;
        break;
      }
    }
  }
  return snapshot;
}

void MetricRegistry::ResetForTesting() {
  MutexLock lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->counters) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& cells : shard->histograms) {
      cells.count.store(0, std::memory_order_relaxed);
      cells.sum.store(0.0, std::memory_order_relaxed);
      cells.min.store(0.0, std::memory_order_relaxed);
      cells.max.store(0.0, std::memory_order_relaxed);
      for (auto& bucket : cells.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
  for (auto& gauge : gauge_values_) {
    gauge.store(0.0, std::memory_order_relaxed);
  }
}

JsonValue MetricsSnapshot::ToJson(bool with_buckets) const {
  JsonValue doc = JsonValue::Object();
  JsonValue counters_json = JsonValue::Object();
  for (const auto& [name, value] : counters) counters_json.Set(name, value);
  doc.Set("counters", std::move(counters_json));

  JsonValue gauges_json = JsonValue::Object();
  for (const auto& [name, value] : gauges) gauges_json.Set(name, value);
  doc.Set("gauges", std::move(gauges_json));

  JsonValue histograms_json = JsonValue::Object();
  for (const auto& [name, data] : histograms) {
    JsonValue h = JsonValue::Object();
    h.Set("count", data.count);
    h.Set("sum", data.sum);
    h.Set("mean", data.Mean());
    h.Set("min", data.min);
    h.Set("max", data.max);
    if (with_buckets) {
      // Sparse encoding: {"<bucket upper bound exponent>": count}.
      JsonValue buckets = JsonValue::Object();
      for (size_t b = 0; b < HistogramData::kBuckets; ++b) {
        if (data.buckets[b] > 0) {
          buckets.Set(std::to_string(b), data.buckets[b]);
        }
      }
      h.Set("log2_buckets", std::move(buckets));
    }
    histograms_json.Set(name, std::move(h));
  }
  doc.Set("histograms", std::move(histograms_json));
  return doc;
}

Status WriteMetricsFile(const MetricRegistry& registry,
                        const std::string& path, bool with_buckets) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "csce.metrics.v1");
  doc.Set("metrics", registry.Snapshot().ToJson(with_buckets));
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open metrics file: " + path);
  out << doc.Dump(1) << "\n";
  if (!out) return Status::IOError("cannot write metrics file: " + path);
  return Status::OK();
}

Status MergeMetricsDocuments(const std::vector<std::string>& docs,
                             JsonValue* out) {
  MetricsSnapshot merged;
  for (const std::string& text : docs) {
    JsonValue doc;
    CSCE_RETURN_IF_ERROR(JsonParse(text, &doc));
    const JsonValue* schema = doc.Find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->AsString() != "csce.metrics.v1") {
      return Status::InvalidArgument(
          "metrics merge: document is not csce.metrics.v1");
    }
    const JsonValue* metrics = doc.Find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
      return Status::InvalidArgument(
          "metrics merge: document has no metrics object");
    }
    if (const JsonValue* counters = metrics->Find("counters")) {
      for (const auto& [name, value] : counters->members()) {
        if (!value.is_number()) {
          return Status::InvalidArgument("metrics merge: non-numeric counter");
        }
        merged.counters[name] += value.AsUint();
      }
    }
    if (const JsonValue* gauges = metrics->Find("gauges")) {
      for (const auto& [name, value] : gauges->members()) {
        if (!value.is_number()) {
          return Status::InvalidArgument("metrics merge: non-numeric gauge");
        }
        // Gauges are instantaneous values (peaks, sizes); the max is the
        // only merge that stays meaningful across processes.
        auto [it, inserted] = merged.gauges.emplace(name, value.AsDouble());
        if (!inserted && value.AsDouble() > it->second) {
          it->second = value.AsDouble();
        }
      }
    }
    if (const JsonValue* histograms = metrics->Find("histograms")) {
      for (const auto& [name, h] : histograms->members()) {
        if (!h.is_object()) {
          return Status::InvalidArgument("metrics merge: malformed histogram");
        }
        const JsonValue* count = h.Find("count");
        const JsonValue* sum = h.Find("sum");
        const JsonValue* min = h.Find("min");
        const JsonValue* max = h.Find("max");
        if (count == nullptr || !count->is_number() || sum == nullptr ||
            !sum->is_number() || min == nullptr || !min->is_number() ||
            max == nullptr || !max->is_number()) {
          return Status::InvalidArgument("metrics merge: malformed histogram");
        }
        HistogramData& into = merged.histograms[name];
        uint64_t n = count->AsUint();
        if (n > 0) {
          if (into.count == 0 || min->AsDouble() < into.min) {
            into.min = min->AsDouble();
          }
          if (into.count == 0 || max->AsDouble() > into.max) {
            into.max = max->AsDouble();
          }
          into.count += n;
          into.sum += sum->AsDouble();
        }
        if (const JsonValue* buckets = h.Find("log2_buckets")) {
          for (const auto& [exp, c] : buckets->members()) {
            if (!c.is_number()) {
              return Status::InvalidArgument(
                  "metrics merge: malformed histogram bucket");
            }
            size_t b = 0;
            for (char ch : exp) {
              if (ch < '0' || ch > '9') {
                return Status::InvalidArgument(
                    "metrics merge: malformed histogram bucket key");
              }
              b = b * 10 + static_cast<size_t>(ch - '0');
              if (b >= HistogramData::kBuckets) break;
            }
            if (exp.empty() || b >= HistogramData::kBuckets) {
              return Status::InvalidArgument(
                  "metrics merge: histogram bucket key out of range");
            }
            into.buckets[b] += c.AsUint();
          }
        }
      }
    }
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "csce.metrics.v1");
  doc.Set("metrics", merged.ToJson(true));
  *out = std::move(doc);
  return Status::OK();
}

Status WriteMetricsDocument(const JsonValue& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open metrics file: " + path);
  out << doc.Dump(1) << "\n";
  if (!out) return Status::IOError("cannot write metrics file: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace csce
