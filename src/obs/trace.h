#ifndef CSCE_OBS_TRACE_H_
#define CSCE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace csce {
namespace obs {

/// One completed span: a named [ts, ts+dur] interval on one thread's
/// track, in microseconds since the recorder was created.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
};

/// Records spans into per-thread buffers and serializes them as Chrome
/// `chrome://tracing` / Perfetto JSON ("X" complete events, one track
/// per worker thread, sequential tids in first-touch order).
///
/// Tracing is opt-in per process: nothing is recorded until a recorder
/// is installed with `Install`, and an uninstalled process pays one
/// relaxed atomic load per would-be span. Installation is not
/// reference-counted — the caller owns the recorder and must
/// `Install(nullptr)` before destroying it.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder spans report to (nullptr = tracing off).
  static TraceRecorder* Current();
  static void Install(TraceRecorder* recorder);

  /// Microseconds since this recorder was constructed.
  double NowMicros() const;

  /// Appends a completed span to the calling thread's track.
  void RecordSpan(std::string name, std::string category, double ts_us,
                  double dur_us) CSCE_EXCLUDES(mu_);

  size_t NumEvents() const CSCE_EXCLUDES(mu_);

  /// The Chrome trace document: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Events are ordered by track then begin time; every track
  /// additionally carries a thread_name metadata event.
  JsonValue ToChromeJson() const CSCE_EXCLUDES(mu_);

  Status WriteFile(const std::string& path) const;

 private:
  struct ThreadTrack {
    uint32_t tid;
    std::vector<TraceEvent> events;
  };

  ThreadTrack* TrackForThisThread() CSCE_EXCLUDES(mu_);

  /// Both const after construction.
  const uint64_t epoch_ CSCE_NOT_GUARDED;
  const std::chrono::steady_clock::time_point start_ CSCE_NOT_GUARDED;

  mutable Mutex mu_;
  /// Growth and every events append/read happen under mu_; a track's
  /// tid is immutable once created and may be read lock-free.
  std::vector<std::unique_ptr<ThreadTrack>> tracks_ CSCE_GUARDED_BY(mu_);
};

/// RAII span: times its own scope and reports to the installed
/// recorder, if any. Construction with tracing off is a single relaxed
/// load; names should be short static strings ("plan.make").
class Span {
 public:
  explicit Span(const char* name, const char* category = "csce");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_;  // nullptr: tracing was off at construction
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace csce

#endif  // CSCE_OBS_TRACE_H_
