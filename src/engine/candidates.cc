#include "engine/candidates.h"

#include <algorithm>

#include "engine/setops/setops.h"

namespace csce {

void IntersectSorted(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out) {
  // Sized to the kernel contract (max result + SIMD store pad), shrunk
  // to the true length afterwards.
  out->resize(std::min(a.size(), b.size()) + setops::kOutPad);
  out->resize(setops::Intersect(a, b, out->data()));
}

void IntersectInPlace(std::vector<VertexId>* acc,
                      std::span<const VertexId> b) {
  if (acc->empty()) return;
  // Intersect forbids aliasing; round-trip through a scratch vector.
  std::vector<VertexId> result(std::min(acc->size(), b.size()) +
                               setops::kOutPad);
  result.resize(setops::Intersect(*acc, b, result.data()));
  acc->swap(result);
}

void DifferenceInPlace(std::vector<VertexId>* acc,
                       std::span<const VertexId> b) {
  if (acc->empty() || b.empty()) return;
  // Difference is in-place safe and never writes past acc->size().
  acc->resize(setops::Difference(*acc, b, acc->data()));
}

}  // namespace csce
