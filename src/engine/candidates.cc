#include "engine/candidates.h"

#include <algorithm>

namespace csce {
namespace {

// Size ratio beyond which galloping beats the linear merge.
constexpr size_t kGallopRatio = 32;

// Galloping intersection: for each element of the small list, locate it
// in the large list with an exponentially advancing lower_bound.
void GallopIntersect(std::span<const VertexId> small_list,
                     std::span<const VertexId> large_list,
                     std::vector<VertexId>* out) {
  const VertexId* lo = large_list.data();
  const VertexId* end = large_list.data() + large_list.size();
  for (VertexId x : small_list) {
    // Exponential probe from the current frontier.
    size_t step = 1;
    const VertexId* probe = lo;
    while (probe + step < end && *(probe + step) < x) {
      probe += step;
      step <<= 1;
    }
    const VertexId* hi = std::min(probe + step + 1, end);
    lo = std::lower_bound(probe, hi, x);
    if (lo == end) return;
    if (*lo == x) out->push_back(x);
  }
}

}  // namespace

void IntersectSorted(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size()) std::swap(a, b);
  out->reserve(a.size());
  if (b.size() / a.size() >= kGallopRatio) {
    GallopIntersect(a, b, out);
    return;
  }
  const VertexId* pa = a.data();
  const VertexId* ea = a.data() + a.size();
  const VertexId* pb = b.data();
  const VertexId* eb = b.data() + b.size();
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      out->push_back(*pa);
      ++pa;
      ++pb;
    }
  }
}

void IntersectInPlace(std::vector<VertexId>* acc,
                      std::span<const VertexId> b) {
  if (acc->empty()) return;
  std::vector<VertexId> result;
  IntersectSorted(*acc, b, &result);
  acc->swap(result);
}

void DifferenceInPlace(std::vector<VertexId>* acc,
                       std::span<const VertexId> b) {
  if (acc->empty() || b.empty()) return;
  auto write = acc->begin();
  const VertexId* pb = b.data();
  const VertexId* eb = b.data() + b.size();
  for (VertexId x : *acc) {
    while (pb != eb && *pb < x) ++pb;
    if (pb != eb && *pb == x) continue;  // drop x
    *write++ = x;
  }
  acc->erase(write, acc->end());
}

}  // namespace csce
