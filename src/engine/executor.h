#ifndef CSCE_ENGINE_EXECUTOR_H_
#define CSCE_ENGINE_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "ccsr/ccsr.h"
#include "engine/prune/prune.h"
#include "engine/sce_cache.h"
#include "engine/setops/vertex_scratch.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "util/bitset.h"
#include "util/status.h"
#include "util/stop_token.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace csce {

/// Called once per embedding with the mapping indexed by pattern vertex
/// (mapping[u] is the matched data vertex). Return false to stop the
/// enumeration early.
using EmbeddingCallback = std::function<bool(std::span<const VertexId>)>;

/// Yields the next batch of root-position candidates, or an empty span
/// when none remain. Used by the morsel-parallel runtime: each worker's
/// executor drains morsels from a shared claim counter instead of
/// enumerating the whole root candidate set (see runtime/).
using RootClaimFn = std::function<std::span<const VertexId>()>;

/// One unit of resumable cross-shard work: a partial mapping (plan
/// positions [0, depth)) that must continue on another shard. Emitted
/// by a shard-mode executor when the next position's candidates leave
/// the shard; consumed by Executor::RunTask on the target (see src/
/// shard/ and the DESIGN.md "Sharded execution" section).
struct ShardTask {
  enum class Kind : uint8_t {
    /// No locally owned parent mapping: the target (owner of the first
    /// parent) computes the candidates, enumerates its owned ones and
    /// re-ships the rest. Exclusive — the sender enumerates nothing at
    /// this depth, so every candidate is handled exactly once.
    kForward = 0,
    /// `candidates` supplied, all owned by the target: the target
    /// intersects them with its local candidate set (which is complete
    /// for owned vertices) and enumerates the survivors.
    kVerify = 1,
    /// Edge-less (seed/label-scan) position broadcast: the target
    /// enumerates its owned slice of the mapping-independent candidate
    /// set and never re-broadcasts at this depth.
    kLocalOnly = 2,
  };
  Kind kind = Kind::kForward;
  uint32_t target_shard = 0;
  uint32_t depth = 0;                  // position to extend next
  std::vector<VertexId> mapping;       // by position, size == depth
  std::vector<VertexId> candidates;    // kVerify only: sorted, owned
};

/// Receives tasks the executor emits for other shards. Called on the
/// enumeration path; implementations should only buffer.
using ShardEmitFn = std::function<void(ShardTask&&)>;

/// Shard-mode configuration: this executor enumerates only candidates
/// its shard owns and emits ShardTasks for the rest. `owner` maps every
/// data vertex to its owning shard and must outlive the run.
struct ShardSpec {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  std::span<const uint32_t> owner;
  ShardEmitFn emit;
};

struct ExecOptions {
  /// Stop after this many embeddings (0 = find all).
  uint64_t max_embeddings = 0;
  /// Abort after this many seconds (0 = no limit). The run is flagged
  /// `timed_out` and the partial count is reported.
  double time_limit_seconds = 0.0;
  /// Invoked per embedding when set; otherwise the engine only counts.
  EmbeddingCallback callback;
  /// Symmetry-breaking restrictions f(first) < f(second) over pattern
  /// vertices. Empty for CSCE proper (see paper Finding 2); used by the
  /// GraphPi-like configuration in benchmarks.
  std::vector<std::pair<VertexId, VertexId>> restrictions;
  /// Cooperative cancellation: polled at the same cadence as the time
  /// limit; a stopped token aborts the run with `cancelled` set. Must
  /// outlive the run. nullptr disables the check.
  const StopToken* stop = nullptr;
  /// When set, the root position enumerates the claimed morsels instead
  /// of its own candidate set. The spans must contain (a subset of) the
  /// candidates ComputeRootCandidates() would produce, must stay alive
  /// for the whole run, and are consumed in claim order. Plans with a
  /// single position still honor the count-only fast path per morsel.
  RootClaimFn root_claim;
  /// SCE oracle (debug, enabled by MatchOptions::self_check): before
  /// trusting a fresh cache hit, recompute the candidate set from
  /// scratch and CSCE_CHECK it equals the cached one — the cache is
  /// never trusted blindly. Turns every reuse into a recomputation, so
  /// it costs exactly the speedup SCE buys; the oracle recomputations
  /// are not counted in candidate_sets_computed.
  bool verify_sce = false;
  /// Shard-mode execution (nullptr = single-node). The executor then
  /// enumerates only candidates owned by `shard->shard_id` and routes
  /// the rest through `shard->emit`; correctness relies on the shard
  /// CCSR holding every edge incident to an owned vertex (the 1-hop
  /// replication ShardPlan::ExtractShard guarantees).
  const ShardSpec* shard = nullptr;
  /// Proactive pruning passes to act on (engine/prune/prune.h); the
  /// matcher forwards Plan::prune, so only passes the plan compiled
  /// directives for have any effect. All passes are force-disabled in
  /// shard mode: a shard CCSR holds only the edges incident to owned
  /// vertices (1-hop replication), so shard-local label masks and rows
  /// are partial and pruning on them could drop real embeddings.
  PruneOptions prune;
  /// Test-only fault injection: after this position first stores its
  /// SCE cache entry, the cached candidate vector is corrupted (its
  /// last candidate is dropped). Later reuses then return wrong
  /// candidates — which verify_sce must catch with a CHECK failure,
  /// and which silently skews results without it (that contrast is the
  /// test). UINT32_MAX (the default) disables.
  uint32_t poison_sce_position = 0xFFFFFFFFu;
};

struct ExecStats {
  uint64_t embeddings = 0;
  bool timed_out = false;
  bool limit_reached = false;
  /// The run was aborted by `ExecOptions::stop`.
  bool cancelled = false;
  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  /// Non-empty root morsels this executor claimed via
  /// `ExecOptions::root_claim` (0 outside morsel mode). The parallel
  /// runtime's merged stats sum to exactly ceil(roots / morsel_size)
  /// on an uninterrupted run — a deterministic-counter test anchor.
  uint64_t morsels_claimed = 0;
  /// Per-run size distribution of the computed candidate sets,
  /// accumulated locally (plain array bumps) and flushed into the
  /// global "engine.candidate_set_size" histogram once at the end of
  /// Run — the hot path never touches the metric registry.
  obs::LocalHistogram candidate_set_size;
  /// Summed input lengths of every set intersection the candidate
  /// computation and the aux projections perform. Thread-count-VARIANT
  /// (the compute/reuse split of SCE differs across workers); reported
  /// by bench_prune as the pruning work-reduction measure.
  uint64_t intersect_elements = 0;
  /// Candidates removed by the LPI label-pair prefilter. Reusing a
  /// cached candidate set re-adds the entry's removal count, so the
  /// total depends only on how often each set is consumed — it is
  /// thread-count-invariant (asserted in metrics_test.cc).
  uint64_t prune_candidates_removed = 0;
  /// Extensions discarded before recursing: aux empty-cuts plus REE
  /// sibling skips. Both are deterministic per (prefix, candidate), so
  /// the total is thread-count-invariant on uninterrupted runs.
  uint64_t prune_extensions_skipped = 0;
  /// Candidate sets served from a completed aux projection instead of
  /// a fresh intersection chain. Thread-count-VARIANT (compute/reuse
  /// split, like intersect_elements).
  uint64_t prune_aux_hits = 0;
  /// LPI shrink ratio in percent of the base candidate set, recorded
  /// on compute AND reuse so the sample count equals computes+reuses —
  /// thread-count-invariant like prune_candidates_removed. Under
  /// verify_sce the oracle recomputation records an extra sample per
  /// reuse (matching candidate_set_size's existing behavior).
  obs::LocalHistogram prune_shrink_ratio;
  double seconds = 0.0;
  /// Filled by ParallelExecutor only: total worker wall time not spent
  /// inside Executor::Run, i.e. threads * wall - sum(worker seconds).
  double worker_idle_seconds = 0.0;
};

/// The pipelined worst-case-optimal-join executor: grows partial
/// embeddings one pattern vertex at a time along the plan order,
/// computing each position's candidates by intersecting cluster
/// neighbor lists and reusing them via SCE caches.
///
/// Allocation discipline: Prepare() computes a worst-case candidate
/// bound per position (the shortest incident cluster row, the seed
/// endpoint count, or the label frequency) and reserves every scratch
/// buffer once — the per-slot cache storage, a per-depth ping-pong
/// partner for chained intersections, and the negation mark bitmap.
/// After Prepare() the enumeration performs no heap allocation; the
/// VertexScratch hot-growth counter is the test hook proving it.
class Executor {
 public:
  /// `gc` provides vertex labels, `qc` the decompressed clusters, and
  /// `plan` the compiled matching order. All must outlive the executor.
  Executor(const Ccsr& gc, const QueryClusters& qc, const Plan& plan);

  /// Runs the enumeration. Reentrant: each call resets all state, and
  /// `*stats` is zeroed at entry so a failed run never leaves a reused
  /// executor's previous counters in the caller's struct.
  Status Run(const ExecOptions& options, ExecStats* stats);

  /// The root position's full candidate set (seed/label scan plus the
  /// LDF degree filter), exactly what Run would enumerate at depth 0.
  /// The morsel-parallel runtime computes this once, then shards it
  /// across workers via ExecOptions::root_claim. When `stats` is
  /// non-null the probe's counters are exported into it: with pruning
  /// on, the root set is LPI-filtered exactly once (workers enumerate
  /// pre-filtered morsels and never recompute depth 0), so the caller
  /// must fold these counters into its merged totals to keep them
  /// equal to a single-threaded run.
  Status ComputeRootCandidates(const ExecOptions& options,
                               std::vector<VertexId>* out,
                               ExecStats* stats = nullptr);

  /// Task-mode lifecycle (shard workers): prepare once per query, then
  /// accumulate any number of RunRootMorsels/RunTask calls into one
  /// stats total collected by FinishTasks. Unlike Run, the per-call
  /// entry points never flush engine metrics or zero the accumulated
  /// counters, so a round-based driver can interleave them freely.
  Status PrepareForTasks(const ExecOptions& options);
  /// Drains `options.root_claim` morsels exactly like Run's morsel
  /// loop (shard workers claim from their owned-root list).
  CSCE_HOT_PATH Status RunRootMorsels();
  /// Resumes enumeration from the task's partial mapping. Malformed
  /// tasks (out-of-range vertices, wrong kind for the position, unsorted
  /// or non-owned candidates) return InvalidArgument without crashing —
  /// tasks arrive over the wire. After an aborted run (limit/timeout/
  /// cancel) further tasks are drained as cheap no-ops.
  CSCE_HOT_PATH Status RunTask(const ShardTask& task);
  /// Copies out the accumulated task-mode stats and flushes them into
  /// the process metric registry (once per query, mirroring Run).
  void FinishTasks(ExecStats* stats);

 private:
  struct ResolvedEdge {
    uint32_t pos;
    const ClusterView* view;  // nullptr: empty cluster, no match possible
    bool incoming;
  };
  struct ResolvedNegation {
    uint32_t pos;
    // Views whose Out(f(w)) (use_out=true) or In(f(w)) lists are
    // forbidden candidates and get subtracted.
    std::vector<std::pair<const ClusterView*, bool>> removals;
  };
  struct Restriction {
    uint32_t other_pos;
    bool require_greater;  // candidate must compare > (else <) f(other)
  };

  Status Prepare(const ExecOptions& options);
  /// Worst-case result size of ComputeCandidates at `depth`, used to
  /// pre-size scratch. Seeded: endpoint count; label scan: label
  /// frequency; edges: shortest incident cluster row.
  size_t CandidateBound(uint32_t depth) const;
  CSCE_HOT_PATH bool Enumerate(
      uint32_t depth);  // false: abort (timeout/limit/callback)
  CSCE_HOT_PATH bool EnumerateOver(uint32_t depth,
                                   std::span<const VertexId> candidates);
  /// Shard-mode extension at `depth`: enumerate owned candidates, ship
  /// the rest (see ShardTask for the three routing cases).
  CSCE_HOT_PATH bool EnumerateSharded(uint32_t depth);
  /// Enumerates Candidates(depth) filtered to locally owned vertices.
  CSCE_HOT_PATH bool EnumerateOwned(uint32_t depth);
  /// Intersects the rows of locally owned parents (complete by 1-hop
  /// replication), buckets the non-owned result by owner and emits one
  /// kVerify task per non-empty bucket.
  /// Allocates by design (per-shard routing buckets can outgrow any
  /// Prepare-time bound): cross-shard routing is outside the single-
  /// node zero-allocation contract, so it is exempted rather than hot.
  CSCE_ALLOC_OK void ShipRemoteCandidates(uint32_t depth);
  /// Allocates by design (the emitted task owns its mapping copy).
  CSCE_ALLOC_OK void EmitTask(ShardTask::Kind kind, uint32_t target,
                              uint32_t depth,
                              std::vector<VertexId> candidates);
  Status SeedPrefix(std::span<const VertexId> prefix);
  void ClearPrefix(std::span<const VertexId> prefix);
  CSCE_HOT_PATH std::span<const VertexId> Candidates(uint32_t depth);
  CSCE_HOT_PATH void ComputeCandidates(uint32_t depth,
                                       setops::VertexScratch* out);
  /// Runs the aux projection steps triggered by the mapping just
  /// placed at `depth` (prune pass "aux"). Returns false when a
  /// partial projection became empty: some not-yet-matched position's
  /// candidate set is already known to be empty, so the subtree under
  /// this placement cannot produce an embedding and is cut.
  CSCE_HOT_PATH bool RunAuxSteps(uint32_t depth);
  /// REE probe (prune pass "ree"): true if `v` is interchangeable with
  /// a memoized zero-embedding sibling at `depth`, so its subtree is
  /// provably empty and may be skipped.
  CSCE_HOT_PATH bool ReeSkip(uint32_t depth, VertexId v);
  /// Memoizes `v` after its subtree completed with zero embeddings.
  CSCE_HOT_PATH void ReeInsert(uint32_t depth, VertexId v);
  /// Fingerprint of v's row lengths across every plan-relevant view
  /// (cheap necessary condition for interchangeability).
  CSCE_HOT_PATH uint64_t ReeKey(VertexId v) const;
  /// Exact check: a and b have element-wise identical rows in every
  /// plan-relevant view, in both directions, and no row touches a or b
  /// (which would make the (a b) swap alter adjacency). Then swapping
  /// a and b is an automorphism of the plan-relevant part of the data
  /// graph that fixes the current prefix, so their subtrees hold
  /// equally many embeddings.
  CSCE_HOT_PATH bool ReeInterchangeable(VertexId a, VertexId b) const;
  CSCE_HOT_PATH bool PassesRestrictions(uint32_t depth, VertexId v) const;
  CSCE_HOT_PATH bool Emit();
  CSCE_HOT_PATH bool CheckDeadline();

  const Ccsr& gc_;
  const QueryClusters& qc_;
  const Plan& plan_;

  // Per-run state.
  const ExecOptions* options_ = nullptr;
  ExecStats stats_;
  WallTimer timer_;
  bool aborted_ = false;
  bool injective_ = true;
  std::vector<std::vector<ResolvedEdge>> edges_;        // per position
  std::vector<std::vector<ResolvedNegation>> negs_;     // per position
  std::vector<std::vector<Restriction>> restrictions_;  // per position
  std::vector<uint32_t> cache_slot_;                    // per position
  std::vector<CandidateCache> caches_;
  std::vector<size_t> cand_bound_;           // per position, see above
  std::vector<setops::VertexScratch> temp_;  // per-depth ping-pong partner
  std::vector<std::span<const VertexId>> lists_;      // gather buffer
  std::vector<std::span<const VertexId>> neg_lists_;  // gather buffer
  DynamicBitset neg_marks_;  // bitmap-difference scratch, all-zero at rest
  // Shard mode only (options_->shard != nullptr).
  bool sharded_ = false;
  std::vector<setops::VertexScratch> owned_scratch_;  // per depth
  setops::VertexScratch ship_a_;  // ping-pong pair for the ship-set
  setops::VertexScratch ship_b_;  // intersection of owned-parent rows
  std::vector<std::vector<VertexId>> ship_buckets_;  // per target shard
  setops::VertexScratch sce_oracle_scratch_;  // verify_sce recompute buffer

  // Proactive pruning (engine/prune/): the effective per-run pass set
  // (ExecOptions::prune, forced off in shard mode) plus its state.
  PruneOptions prune_;
  /// One aux projection step per backward edge of an aux-enabled
  /// position, bucketed by the dependency depth whose placement
  /// triggers it. Steps of one target form a chain in dependency
  /// order: step 0 seeds the target's span from the dependency's row
  /// (zero copy), step s >= 1 intersects the previous span with the
  /// next row into its own buffer. One buffer per step — not a
  /// ping-pong pair — because the spans of steps 0..s stay live while
  /// the recursion between two dependency depths explores siblings.
  struct AuxStep {
    uint32_t target;  // plan position whose projection this refines
    uint32_t step;    // chain index (0 seeds the span)
    const ClusterView* view;  // nullptr: empty cluster, always cuts
    bool incoming;
    int32_t buf;  // aux_bufs_ index; -1 for step 0
  };
  std::vector<std::vector<AuxStep>> aux_steps_;      // per dep depth
  std::vector<std::span<const VertexId>> aux_span_;  // per target position
  std::vector<uint32_t> aux_steps_done_;             // per target position
  std::vector<uint32_t> aux_steps_total_;  // per target (0 = not aux)
  std::vector<setops::VertexScratch> aux_bufs_;
  /// REE sibling memo: per depth, a small ring of fingerprints of
  /// candidates whose completed subtree held zero embeddings under the
  /// current prefix. Reset whenever a sibling loop starts at that
  /// depth (the memo is only valid for one prefix).
  static constexpr uint32_t kReeTableEntries = 8;
  struct ReeEntry {
    uint64_t key;
    VertexId v;
  };
  struct ReeTable {
    std::array<ReeEntry, kReeTableEntries> slots;
    uint32_t count = 0;
    uint32_t next = 0;  // ring eviction cursor once full
  };
  std::vector<ReeTable> ree_tables_;  // per depth
  std::vector<uint8_t> ree_active_;   // per depth, resolved in Prepare
  /// Every distinct cluster view the plan consults (edge constraints
  /// and negation removals): REE interchangeability must hold across
  /// all of them.
  std::vector<const ClusterView*> ree_views_;
  /// LPI bookkeeping of the most recent ComputeCandidates call, copied
  /// into the SCE cache entry so reuses can re-add the contribution
  /// (thread-count invariance; see ExecStats::prune_candidates_removed).
  uint64_t last_lpi_removed_ = 0;
  int32_t last_lpi_shrink_pct_ = -1;  // -1: the LPI filter did not run

  std::vector<VertexId> mapping_by_pos_;
  std::vector<VertexId> mapping_by_vertex_;
  DynamicBitset used_;
  uint64_t deadline_check_counter_ = 0;
};

}  // namespace csce

#endif  // CSCE_ENGINE_EXECUTOR_H_
