#ifndef CSCE_ENGINE_EXECUTOR_H_
#define CSCE_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "ccsr/ccsr.h"
#include "engine/sce_cache.h"
#include "plan/planner.h"
#include "util/bitset.h"
#include "util/status.h"
#include "util/timer.h"

namespace csce {

/// Called once per embedding with the mapping indexed by pattern vertex
/// (mapping[u] is the matched data vertex). Return false to stop the
/// enumeration early.
using EmbeddingCallback = std::function<bool(std::span<const VertexId>)>;

struct ExecOptions {
  /// Stop after this many embeddings (0 = find all).
  uint64_t max_embeddings = 0;
  /// Abort after this many seconds (0 = no limit). The run is flagged
  /// `timed_out` and the partial count is reported.
  double time_limit_seconds = 0.0;
  /// Invoked per embedding when set; otherwise the engine only counts.
  EmbeddingCallback callback;
  /// Symmetry-breaking restrictions f(first) < f(second) over pattern
  /// vertices. Empty for CSCE proper (see paper Finding 2); used by the
  /// GraphPi-like configuration in benchmarks.
  std::vector<std::pair<VertexId, VertexId>> restrictions;
};

struct ExecStats {
  uint64_t embeddings = 0;
  bool timed_out = false;
  bool limit_reached = false;
  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  double seconds = 0.0;
};

/// The pipelined worst-case-optimal-join executor: grows partial
/// embeddings one pattern vertex at a time along the plan order,
/// computing each position's candidates by intersecting cluster
/// neighbor lists and reusing them via SCE caches.
class Executor {
 public:
  /// `gc` provides vertex labels, `qc` the decompressed clusters, and
  /// `plan` the compiled matching order. All must outlive the executor.
  Executor(const Ccsr& gc, const QueryClusters& qc, const Plan& plan);

  /// Runs the enumeration. Reentrant: each call resets all state.
  Status Run(const ExecOptions& options, ExecStats* stats);

 private:
  struct ResolvedEdge {
    uint32_t pos;
    const ClusterView* view;  // nullptr: empty cluster, no match possible
    bool incoming;
  };
  struct ResolvedNegation {
    uint32_t pos;
    // Views whose Out(f(w)) (use_out=true) or In(f(w)) lists are
    // forbidden candidates and get subtracted.
    std::vector<std::pair<const ClusterView*, bool>> removals;
  };
  struct Restriction {
    uint32_t other_pos;
    bool require_greater;  // candidate must compare > (else <) f(other)
  };

  Status Prepare(const ExecOptions& options);
  bool Enumerate(uint32_t depth);  // false: abort (timeout/limit/callback)
  const std::vector<VertexId>& Candidates(uint32_t depth);
  void ComputeCandidates(uint32_t depth, std::vector<VertexId>* out);
  bool PassesRestrictions(uint32_t depth, VertexId v) const;
  bool Emit();
  bool CheckDeadline();

  const Ccsr& gc_;
  const QueryClusters& qc_;
  const Plan& plan_;

  // Per-run state.
  const ExecOptions* options_ = nullptr;
  ExecStats stats_;
  WallTimer timer_;
  bool aborted_ = false;
  bool injective_ = true;
  std::vector<std::vector<ResolvedEdge>> edges_;        // per position
  std::vector<std::vector<ResolvedNegation>> negs_;     // per position
  std::vector<std::vector<Restriction>> restrictions_;  // per position
  std::vector<uint32_t> cache_slot_;                    // per position
  std::vector<CandidateCache> caches_;
  std::vector<VertexId> mapping_by_pos_;
  std::vector<VertexId> mapping_by_vertex_;
  DynamicBitset used_;
  uint64_t deadline_check_counter_ = 0;
};

}  // namespace csce

#endif  // CSCE_ENGINE_EXECUTOR_H_
