#ifndef CSCE_ENGINE_MATCHER_H_
#define CSCE_ENGINE_MATCHER_H_

#include <cstdint>

#include "ccsr/ccsr.h"
#include "ccsr/cluster_cache.h"
#include "engine/executor.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "plan/planner.h"
#include "util/status.h"

namespace csce {

/// End-to-end options for one CSCE matching task.
struct MatchOptions {
  MatchVariant variant = MatchVariant::kEdgeInduced;
  PlanOptions plan;
  /// Stop after this many embeddings (0 = find all).
  uint64_t max_embeddings = 0;
  /// Abort enumeration after this many seconds (0 = no limit).
  double time_limit_seconds = 0.0;
  /// Symmetry-breaking restrictions (benchmark ablations only).
  std::vector<std::pair<VertexId, VertexId>> restrictions;
  /// Enumeration workers: > 1 shards the root position's candidates
  /// into morsels executed by a private worker pool (see
  /// runtime/parallel_executor.h for semantics and determinism notes);
  /// 0 uses all hardware threads, 1 is the plain serial executor.
  uint32_t num_threads = 1;
  /// Root candidates per morsel when num_threads > 1 (0 = auto).
  uint32_t morsel_size = 0;
  /// Cooperative cancellation token (nullptr = none); a stopped token
  /// aborts enumeration with MatchResult::cancelled set. Must outlive
  /// the call.
  const StopToken* stop = nullptr;
  /// Debug self-check mode. Three layers of paranoia, all ground-truth:
  /// the compiled plan is re-validated against the pattern
  /// (plan/validate.h), every SCE cache reuse is CHECK-compared against
  /// a fresh recomputation before being trusted, and every emitted
  /// embedding is re-verified against privately decompressed clusters
  /// (labels, arcs, injectivity, induced-ness — engine/
  /// embedding_verifier.h). A bad embedding fails the match with
  /// Corruption; a bad cache reuse aborts the process. Disables the
  /// count-only fast path, so expect an order of magnitude of overhead.
  bool self_check = false;
};

/// End-to-end result with the paper's per-stage time breakdown.
struct MatchResult {
  uint64_t embeddings = 0;
  bool timed_out = false;
  bool limit_reached = false;
  bool cancelled = false;

  double read_seconds = 0.0;       // Algorithm 1: cluster selection
  double plan_seconds = 0.0;       // GCF + BuildDAG + LDSF + compile
  double enumerate_seconds = 0.0;  // execution
  double total_seconds = 0.0;

  // Executor counters.
  uint64_t search_nodes = 0;
  uint64_t candidate_sets_computed = 0;
  uint64_t candidate_sets_reused = 0;
  /// Morsel-parallel runs only (num_threads != 1): total non-empty
  /// morsels claimed across workers, and total worker wall time spent
  /// outside Executor::Run (load-imbalance indicator). Both 0 serially.
  uint64_t morsels_claimed = 0;
  double worker_idle_seconds = 0.0;
  /// Proactive-pruning counters (see ExecStats for semantics and
  /// thread-count-invariance notes); all 0 with pruning off.
  uint64_t intersect_elements = 0;
  uint64_t prune_candidates_removed = 0;
  uint64_t prune_extensions_skipped = 0;
  uint64_t prune_aux_hits = 0;

  // Plan/read diagnostics.
  SceStats sce;
  size_t clusters_read = 0;
  size_t decompressed_bytes = 0;
  uint64_t peak_rss_bytes = 0;

  /// Embeddings re-verified by the self-check (options.self_check only;
  /// equals `embeddings` when the run completed without corruption).
  uint64_t embeddings_verified = 0;
};

/// The clusters `plan` will touch, in matching order, deduplicated on
/// first occurrence: seed clusters, edge-constraint clusters, and the
/// star clusters behind each negation constraint. For an mmap'd index
/// this is the prefetch schedule handed to the pager
/// (Ccsr::AdviseQueryClusters) before any cluster bytes are read; the
/// matcher does this itself, shard workers call it around their own
/// ReadClusters.
std::vector<ClusterId> PlanClusterSchedule(const Ccsr& data, const Plan& plan);

/// The public facade: matches patterns against a CCSR-indexed data
/// graph for any of the three SM variants.
///
///   Ccsr gc = Ccsr::Build(data_graph);   // offline, once per graph
///   CsceMatcher matcher(&gc);
///   MatchOptions options;
///   options.variant = MatchVariant::kEdgeInduced;
///   MatchResult result;
///   Status st = matcher.Match(pattern, options, &result);
class CsceMatcher {
 public:
  /// `data` must outlive the matcher. With a non-null `cache`, queries
  /// share decompressed cluster views (see ccsr/cluster_cache.h),
  /// amortizing the paper's Finding-5 read overhead across a session;
  /// the cache must be built over the same `data` and must outlive the
  /// matcher too.
  explicit CsceMatcher(const Ccsr* data, ClusterCache* cache = nullptr)
      : data_(data), cache_(cache) {}

  /// Counts all embeddings (subject to the options' limits).
  Status Match(const Graph& pattern, const MatchOptions& options,
               MatchResult* result) const;

  /// Invokes `callback` per embedding; mapping is indexed by pattern
  /// vertex. Returning false from the callback stops the enumeration.
  Status MatchWithCallback(const Graph& pattern, const MatchOptions& options,
                           const EmbeddingCallback& callback,
                           MatchResult* result) const;

  /// The plan CSCE would use, for inspection/benchmarks.
  Status ExplainPlan(const Graph& pattern, const MatchOptions& options,
                     Plan* plan) const;

  const Ccsr* data() const { return data_; }

 private:
  const Ccsr* data_;
  ClusterCache* cache_;
};

}  // namespace csce

#endif  // CSCE_ENGINE_MATCHER_H_
