#ifndef CSCE_ENGINE_SCE_CACHE_H_
#define CSCE_ENGINE_SCE_CACHE_H_

#include <span>
#include <vector>

#include "engine/setops/vertex_scratch.h"
#include "graph/graph.h"
#include "util/thread_annotations.h"

namespace csce {

/// One position's cached base candidate set together with the mapping
/// snapshot of its dependency positions. The cache implements
/// Definition 1 (Sequential Candidate Equivalence): as long as every
/// dependency's current mapping equals the snapshot, the base candidate
/// set is reusable — verbatim in homomorphic matching, minus the
/// already-used vertices (enforced at consumption time) in the
/// injective variants.
///
/// `candidates` is a VertexScratch, not a std::vector: the executor
/// sizes it once in Prepare() (worst-case candidate bound + SIMD store
/// pad) and the set-operation kernels then write into it directly, so
/// recomputations allocate nothing. `dep_snapshot` is likewise sized by
/// Prepare to the slot's dependency count; Store only overwrites it, so
/// the whole struct is allocation-free on the enumeration path
/// (hot-path-no-alloc checks this).
struct CandidateCache {
  setops::VertexScratch candidates;
  std::vector<VertexId> dep_snapshot;
  bool valid = false;
  /// LPI prefilter bookkeeping (prune pass "lpi"): how many candidates
  /// the label-pair filter removed when this entry was computed, and
  /// the shrink percentage it recorded (-1: the filter did not run).
  /// Every reuse re-adds / re-records them, keeping the prune counters
  /// a function of consumption counts only — and therefore invariant
  /// under the thread-dependent compute/reuse split.
  uint64_t lpi_removed = 0;
  int32_t lpi_shrink_pct = -1;

  /// True if the snapshot matches the current mappings at `deps`.
  CSCE_HOT_PATH bool Fresh(std::span<const uint32_t> deps,
                           std::span<const VertexId> mapping_by_pos) const {
    if (!valid) return false;
    for (size_t i = 0; i < deps.size(); ++i) {
      if (mapping_by_pos[deps[i]] != dep_snapshot[i]) return false;
    }
    return true;
  }

  CSCE_HOT_PATH void Store(std::span<const uint32_t> deps,
                           std::span<const VertexId> mapping_by_pos) {
    CSCE_DCHECK(dep_snapshot.size() == deps.size());
    for (size_t i = 0; i < deps.size(); ++i) {
      dep_snapshot[i] = mapping_by_pos[deps[i]];
    }
    valid = true;
  }
};

}  // namespace csce

#endif  // CSCE_ENGINE_SCE_CACHE_H_
