#ifndef CSCE_ENGINE_SETOPS_SETOPS_H_
#define CSCE_ENGINE_SETOPS_SETOPS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "util/bitset.h"
#include "util/thread_annotations.h"

namespace csce {
namespace setops {

/// Vectorized ordered-set kernels for the enumeration hot path.
///
/// All inputs are sorted unique VertexId lists (CCSR cluster rows);
/// outputs likewise. The kernels write into raw caller storage and
/// return the result length — no clears, no reallocation, no reads of
/// prior output contents — so the executor can ping-pong preallocated
/// scratch buffers with zero heap traffic.
///
/// Dispatch: the widest kernel the CPU supports is selected once, at
/// first use (AVX2 > SSE > scalar). `CSCE_FORCE_SCALAR=1` pins the
/// portable scalar reference — the differential-testing oracle — and
/// `CSCE_SETOPS=scalar|sse|avx2` pins a specific kernel (useful for
/// exercising the SSE path on AVX2 hardware). An unsupported request
/// falls back to the widest supported kernel.
///
/// SIMD output padding: the vector kernels store whole SIMD lanes and
/// then advance by the matched count, so the output buffer must leave
/// kOutPad elements of slack beyond the maximal result:
///   Intersect:  capacity >= min(|a|, |b|) + kOutPad
///   Difference: capacity >= |a| + kOutPad
/// The scalar kernel never touches the pad, so the contract is uniform.
inline constexpr size_t kOutPad = 8;

enum class Kernel : uint8_t { kScalar = 0, kSse = 1, kAvx2 = 2 };

/// Stable lowercase name ("scalar", "sse", "avx2") for logs/benches.
const char* KernelName(Kernel kernel);

/// Compiled in and supported by this CPU?
bool KernelSupported(Kernel kernel);

/// The kernel the dispatched entry points currently use.
Kernel ActiveKernel();

/// The dispatch policy by itself: environment override, else widest
/// supported. Exposed so tests can exercise CSCE_FORCE_SCALAR /
/// CSCE_SETOPS handling without respawning the process.
Kernel ChooseKernelFromEnv();

/// Test-only: redirects the dispatched entry points to `kernel`
/// (silently clamped to the widest supported kernel). Not thread-safe
/// against concurrently running queries.
void SetKernelForTesting(Kernel kernel);

/// out = a ∩ b. `out` must not alias either input; see kOutPad for the
/// required capacity. Returns the result length.
CSCE_HOT_PATH size_t Intersect(std::span<const VertexId> a,
                               std::span<const VertexId> b, VertexId* out);

/// out = a \ b. Unlike Intersect, in-place use (out == a.data()) is
/// allowed — every kernel's writes trail its reads — and no write ever
/// lands past a.size() elements, so an in-place caller needs no pad.
/// A non-aliasing `out` still follows the kOutPad capacity contract.
CSCE_HOT_PATH size_t Difference(std::span<const VertexId> a,
                                std::span<const VertexId> b, VertexId* out);

/// Fixed-kernel entry points (differential tests, microbenches).
/// `kernel` must be supported (KernelSupported).
size_t IntersectWith(Kernel kernel, std::span<const VertexId> a,
                     std::span<const VertexId> b, VertexId* out);
size_t DifferenceWith(Kernel kernel, std::span<const VertexId> a,
                      std::span<const VertexId> b, VertexId* out);

/// Dense path for negation subtraction: acc = acc \ (∪ lists), in
/// place. Marks every removal vertex in `marks` (sized >= the vertex
/// universe), filters `acc` in one pass, then clears exactly the bits
/// it set — cost O(|acc| + 2·Σ|list|) independent of the list count,
/// versus Σ(|acc| + |list|) for repeated merge subtraction. Returns the
/// new accumulator length. `marks` must be all-zero on entry and is
/// all-zero again on return.
CSCE_HOT_PATH size_t DifferenceManyBitmap(
    VertexId* acc, size_t acc_size,
    std::span<const std::span<const VertexId>> lists, DynamicBitset* marks);

/// Cost-model switch for the dense path: true when marking all removal
/// lists once beats scanning the accumulator per list. Break-even is
/// (lists - 1)·|acc| > Σ|list| with a floor that keeps tiny
/// accumulators on the merge path (see DESIGN.md).
CSCE_HOT_PATH inline bool UseBitmapDifference(size_t acc_size,
                                              size_t num_lists,
                                              size_t total_removals) {
  return num_lists >= 2 && acc_size >= 64 &&
         (num_lists - 1) * acc_size > total_removals;
}

}  // namespace setops
}  // namespace csce

#endif  // CSCE_ENGINE_SETOPS_SETOPS_H_
