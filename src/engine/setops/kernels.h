#ifndef CSCE_ENGINE_SETOPS_KERNELS_H_
#define CSCE_ENGINE_SETOPS_KERNELS_H_

#include <cstddef>

#include "graph/graph.h"

// Internal: raw kernel entry points behind setops.h's dispatched API.
// Each SIMD flavor lives in its own translation unit compiled with the
// matching -m flags (see src/CMakeLists.txt); only that unit contains
// wide instructions, so the library stays runnable on CPUs without
// them as long as dispatch never selects an unsupported kernel.

namespace csce {
namespace setops {
namespace internal {

// Size ratio beyond which every kernel hands lopsided inputs to the
// galloping scalar path (doubling binary search is memory-bound; SIMD
// block compares only pay off on comparable sizes). One constant so all
// kernels switch strategies on identical inputs.
inline constexpr size_t kGallopRatio = 32;

// Portable reference kernels — the differential-testing oracle.
size_t IntersectScalar(const VertexId* a, size_t na, const VertexId* b,
                       size_t nb, VertexId* out);
size_t DifferenceScalar(const VertexId* a, size_t na, const VertexId* b,
                        size_t nb, VertexId* out);

#if defined(__x86_64__) || defined(__i386__)
#define CSCE_SETOPS_X86 1
size_t IntersectSse(const VertexId* a, size_t na, const VertexId* b,
                    size_t nb, VertexId* out);
size_t DifferenceSse(const VertexId* a, size_t na, const VertexId* b,
                     size_t nb, VertexId* out);
size_t IntersectAvx2(const VertexId* a, size_t na, const VertexId* b,
                     size_t nb, VertexId* out);
size_t DifferenceAvx2(const VertexId* a, size_t na, const VertexId* b,
                      size_t nb, VertexId* out);
#endif

}  // namespace internal
}  // namespace setops
}  // namespace csce

#endif  // CSCE_ENGINE_SETOPS_KERNELS_H_
