// SSE (SSSE3) set-operation kernels: the 4-lane analogue of the AVX2
// block merge in setops_avx2.cc — same emit-on-A-advance scheme, same
// gallop delegation, 4×4 all-pairs compare via three _mm_shuffle_epi32
// rotations and a 16-entry byte-shuffle compress table. Compiled with
// -mssse3 (see src/CMakeLists.txt); reached only through runtime
// dispatch.

#include "engine/setops/kernels.h"

#ifdef CSCE_SETOPS_X86

#include <immintrin.h>

#include <cstdint>
#include <utility>

namespace csce {
namespace setops {
namespace internal {
namespace {

// Byte-level shuffle masks: for each 4-bit lane mask, move the set
// lanes (4 bytes each) to the front, order preserved; tail lanes are
// copies of lane 0 (harmless — they land in the kOutPad slack).
struct Compress4Table {
  alignas(16) uint8_t shuf[16][16];
};

constexpr Compress4Table MakeCompress4Table() {
  Compress4Table t{};
  for (uint32_t mask = 0; mask < 16; ++mask) {
    uint32_t k = 0;
    for (uint32_t lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        for (uint32_t byte = 0; byte < 4; ++byte) {
          t.shuf[mask][k * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
        }
        ++k;
      }
    }
    for (; k < 4; ++k) {
      for (uint32_t byte = 0; byte < 4; ++byte) {
        t.shuf[mask][k * 4 + byte] = static_cast<uint8_t>(byte);
      }
    }
  }
  return t;
}

constexpr Compress4Table kCompress4 = MakeCompress4Table();

inline uint32_t MatchMask4(__m128i va, __m128i vb) {
  __m128i m0 = _mm_cmpeq_epi32(va, vb);
  __m128i m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39));  // 0,3,2,1
  __m128i m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E));  // 1,0,3,2
  __m128i m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93));  // 2,1,0,3
  __m128i m = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
  return static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(m)));
}

inline void CompressStore4(VertexId* dst, __m128i va, uint32_t mask) {
  __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4.shuf[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm_shuffle_epi8(va, shuf));
}

}  // namespace

size_t IntersectSse(const VertexId* a, size_t na, const VertexId* b,
                    size_t nb, VertexId* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (nb / na >= kGallopRatio) return IntersectScalar(a, na, b, nb, out);

  size_t i = 0, j = 0, k = 0;
  uint32_t amask = 0;  // matches found for a[i..i+4) in b[0..j)
  while (i + 4 <= na && j + 4 <= nb) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    amask |= MatchMask4(va, vb);
    VertexId a_max = a[i + 3];
    VertexId b_max = b[j + 3];
    if (a_max <= b_max) {
      CompressStore4(out + k, va, amask);
      k += static_cast<size_t>(__builtin_popcount(amask));
      amask = 0;
      i += 4;
    }
    if (b_max <= a_max) j += 4;
  }

  // Scalar tail; `amask` carries final verdicts for the current A block
  // against all of b[0..j) (see setops_avx2.cc).
  size_t lane = 0;
  while (i < na && j < nb) {
    if (lane < 4 && ((amask >> lane) & 1)) {
      out[k++] = a[i++];
      ++lane;
    } else if (a[i] < b[j]) {
      ++i;
      ++lane;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i++];
      ++lane;
      ++j;
    }
  }
  while (i < na && lane < 4) {
    if ((amask >> lane) & 1) out[k++] = a[i];
    ++i;
    ++lane;
  }
  return k;
}

size_t DifferenceSse(const VertexId* a, size_t na, const VertexId* b,
                     size_t nb, VertexId* out) {
  if (na == 0 || nb == 0) return DifferenceScalar(a, na, b, nb, out);
  if (nb / na >= kGallopRatio) return DifferenceScalar(a, na, b, nb, out);

  size_t i = 0, j = 0, k = 0;
  uint32_t amask = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    amask |= MatchMask4(va, vb);
    VertexId a_max = a[i + 3];
    VertexId b_max = b[j + 3];
    if (a_max <= b_max) {
      uint32_t keep = ~amask & 0xFu;
      CompressStore4(out + k, va, keep);
      k += static_cast<size_t>(__builtin_popcount(keep));
      amask = 0;
      i += 4;
    }
    if (b_max <= a_max) j += 4;
  }

  size_t lane = 0;
  while (i < na && j < nb) {
    if (lane < 4 && ((amask >> lane) & 1)) {
      ++i;  // confirmed present in b: dropped
      ++lane;
    } else if (a[i] < b[j]) {
      out[k++] = a[i++];
      ++lane;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++lane;
      ++j;
    }
  }
  while (i < na) {
    if (!(lane < 4 && ((amask >> lane) & 1))) out[k++] = a[i];
    ++i;
    ++lane;
  }
  return k;
}

}  // namespace internal
}  // namespace setops
}  // namespace csce

#endif  // CSCE_SETOPS_X86
