#ifndef CSCE_ENGINE_SETOPS_VERTEX_SCRATCH_H_
#define CSCE_ENGINE_SETOPS_VERTEX_SCRATCH_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "graph/graph.h"
#include "util/logging.h"
#include "util/thread_annotations.h"

namespace csce {
namespace setops {

/// Fixed-capacity vertex buffer for the enumeration hot path.
///
/// Unlike std::vector it never value-initializes on growth and never
/// grows implicitly: capacity is established up front (Reserve, during
/// Executor::Prepare) and the hot path only asserts it (EnsureCapacity,
/// normally a compare). The SIMD set-operation kernels write straight
/// into data() up to a caller-announced length — legal here because the
/// storage is a raw array, with no container bookkeeping to violate
/// (std::vector under -D_GLIBCXX_SANITIZE would flag writes past
/// size()).
///
/// The allocation-counting hook: any EnsureCapacity call that actually
/// has to grow bumps a process-wide counter. The zero-allocation
/// discipline test runs the engine corpus and asserts the counter never
/// moves — proving the Prepare-time bounds really cover every
/// intersection the run performs. Reserve (setup-time) growth is not
/// counted.
class VertexScratch {
 public:
  VertexScratch() = default;

  VertexScratch(VertexScratch&&) = default;
  VertexScratch& operator=(VertexScratch&&) = default;
  VertexScratch(const VertexScratch&) = delete;
  VertexScratch& operator=(const VertexScratch&) = delete;

  /// Setup-time growth (not counted by the hot-path hook). Keeps the
  /// existing allocation when it is already big enough; contents are
  /// discarded either way (callers Reserve before producing data).
  void Reserve(size_t capacity) {
    if (capacity > capacity_) Grow(capacity);
    size_ = 0;
  }

  /// Hot-path capacity guarantee: almost always a compare. Growing here
  /// means a Prepare-time bound was too small — still correct (the
  /// buffer grows), but counted so tests can flag the regression.
  void EnsureCapacity(size_t capacity) {
    if (capacity > capacity_) {
      hot_growths_.fetch_add(1, std::memory_order_relaxed);
      Grow(capacity);
    }
  }

  VertexId* data() { return data_.get(); }
  const VertexId* data() const { return data_.get(); }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Announces how many elements a kernel wrote into data().
  void set_size(size_t n) {
    CSCE_DCHECK(n <= capacity_);
    size_ = n;
  }

  void clear() { size_ = 0; }

  /// Capacity-checked only in debug builds: callers EnsureCapacity an
  /// upper bound before a push loop.
  void push_back(VertexId v) {
    CSCE_DCHECK(size_ < capacity_);
    data_[size_++] = v;
  }

  void pop_back() {
    CSCE_DCHECK(size_ > 0);
    --size_;
  }

  VertexId operator[](size_t i) const {
    CSCE_DCHECK(i < size_);
    return data_[i];
  }

  std::span<const VertexId> span() const { return {data_.get(), size_}; }
  std::span<VertexId> mutable_span() { return {data_.get(), size_}; }

  void Assign(std::span<const VertexId> values) {
    EnsureCapacity(values.size());
    std::copy(values.begin(), values.end(), data_.get());
    size_ = values.size();
  }

  friend bool operator==(const VertexScratch& a, const VertexScratch& b) {
    return a.size_ == b.size_ &&
           std::equal(a.data_.get(), a.data_.get() + a.size_, b.data_.get());
  }

  /// Total hot-path growths since process start (or the last reset).
  static uint64_t HotGrowthCountForTesting() {
    return hot_growths_.load(std::memory_order_relaxed);
  }
  static void ResetHotGrowthCountForTesting() {
    hot_growths_.store(0, std::memory_order_relaxed);
  }

 private:
  /// The one allocation a hot-path caller may reach (via EnsureCapacity
  /// when a Prepare-time bound was too small). Cold by contract: every
  /// hot growth bumps the counter above and fails the zero-allocation
  /// test, so exempting it from hot-path-no-alloc loses nothing.
  CSCE_ALLOC_OK void Grow(size_t capacity) {
    std::unique_ptr<VertexId[]> grown =
        std::make_unique_for_overwrite<VertexId[]>(capacity);
    std::copy(data_.get(), data_.get() + size_, grown.get());
    data_ = std::move(grown);
    capacity_ = capacity;
  }

  inline static std::atomic<uint64_t> hot_growths_{0};

  std::unique_ptr<VertexId[]> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace setops
}  // namespace csce

#endif  // CSCE_ENGINE_SETOPS_VERTEX_SCRATCH_H_
