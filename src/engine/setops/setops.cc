#include "engine/setops/setops.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "engine/setops/kernels.h"
#include "util/logging.h"

namespace csce {
namespace setops {
namespace internal {
namespace {

// Galloping membership scan: locate each element of the small list in
// the large one with an exponentially advancing lower_bound. `keep_hit`
// selects intersection (emit matches) vs difference (emit misses, which
// requires small == a).
template <bool keep_hit>
size_t GallopScan(const VertexId* small_list, size_t ns,
                  const VertexId* large_list, size_t nl, VertexId* out) {
  const VertexId* lo = large_list;
  const VertexId* end = large_list + nl;
  size_t k = 0;
  for (size_t i = 0; i < ns; ++i) {
    VertexId x = small_list[i];
    size_t step = 1;
    const VertexId* probe = lo;
    while (probe + step < end && *(probe + step) < x) {
      probe += step;
      step <<= 1;
    }
    const VertexId* hi = std::min(probe + step + 1, end);
    lo = std::lower_bound(probe, hi, x);
    bool hit = lo != end && *lo == x;
    if constexpr (keep_hit) {
      if (hit) out[k++] = x;
      if (lo == end) break;
    } else {
      if (!hit) out[k++] = x;
      if (lo == end) {
        // Large list exhausted: everything left in `small` survives.
        for (size_t j = i + 1; j < ns; ++j) out[k++] = small_list[j];
        break;
      }
    }
  }
  return k;
}

}  // namespace

size_t IntersectScalar(const VertexId* a, size_t na, const VertexId* b,
                       size_t nb, VertexId* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb / na >= kGallopRatio) {
    return GallopScan</*keep_hit=*/true>(a, na, b, nb, out);
  }
  const VertexId* ea = a + na;
  const VertexId* eb = b + nb;
  size_t k = 0;
  while (a != ea && b != eb) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      out[k++] = *a;
      ++a;
      ++b;
    }
  }
  return k;
}

size_t DifferenceScalar(const VertexId* a, size_t na, const VertexId* b,
                        size_t nb, VertexId* out) {
  if (na == 0) return 0;
  if (nb == 0) {
    if (out != a) std::memcpy(out, a, na * sizeof(VertexId));
    return na;
  }
  if (nb / na >= kGallopRatio) {
    return GallopScan</*keep_hit=*/false>(a, na, b, nb, out);
  }
  const VertexId* ea = a + na;
  const VertexId* eb = b + nb;
  size_t k = 0;
  while (a != ea) {
    while (b != eb && *b < *a) ++b;
    if (b != eb && *b == *a) {
      ++a;
      continue;  // drop
    }
    out[k++] = *a++;
  }
  return k;
}

}  // namespace internal

namespace {

using KernelFn = size_t (*)(const VertexId*, size_t, const VertexId*, size_t,
                            VertexId*);

struct Dispatch {
  Kernel kernel;
  KernelFn intersect;
  KernelFn difference;
};

Dispatch MakeDispatch(Kernel kernel) {
  switch (kernel) {
#ifdef CSCE_SETOPS_X86
    case Kernel::kAvx2:
      if (KernelSupported(Kernel::kAvx2)) {
        return {Kernel::kAvx2, internal::IntersectAvx2,
                internal::DifferenceAvx2};
      }
      [[fallthrough]];
    case Kernel::kSse:
      if (KernelSupported(Kernel::kSse)) {
        return {Kernel::kSse, internal::IntersectSse,
                internal::DifferenceSse};
      }
      [[fallthrough]];
#else
    case Kernel::kAvx2:
    case Kernel::kSse:
#endif
    case Kernel::kScalar:
    default:
      return {Kernel::kScalar, internal::IntersectScalar,
              internal::DifferenceScalar};
  }
}

std::atomic<const Dispatch*> g_dispatch{nullptr};

const Dispatch& ActiveDispatch() {
  const Dispatch* d = g_dispatch.load(std::memory_order_acquire);
  if (d == nullptr) {
    static const Dispatch chosen = MakeDispatch(ChooseKernelFromEnv());
    g_dispatch.store(&chosen, std::memory_order_release);
    d = &chosen;
  }
  return *d;
}

}  // namespace

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSse:
      return "sse";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool KernelSupported(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return true;
#ifdef CSCE_SETOPS_X86
    case Kernel::kSse:
      return __builtin_cpu_supports("ssse3") != 0;
    case Kernel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Kernel::kSse:
    case Kernel::kAvx2:
      return false;
#endif
  }
  return false;
}

Kernel ChooseKernelFromEnv() {
  // getenv is mt-unsafe only against concurrent setenv; the dispatch
  // runs once from a static initializer before any worker thread
  // exists, and nothing in the process ever calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* force = std::getenv("CSCE_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Kernel::kScalar;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- same single-threaded init
  if (const char* name = std::getenv("CSCE_SETOPS"); name != nullptr) {
    if (std::strcmp(name, "scalar") == 0) return Kernel::kScalar;
    if (std::strcmp(name, "sse") == 0) return Kernel::kSse;
    if (std::strcmp(name, "avx2") == 0) return Kernel::kAvx2;
  }
  if (KernelSupported(Kernel::kAvx2)) return Kernel::kAvx2;
  if (KernelSupported(Kernel::kSse)) return Kernel::kSse;
  return Kernel::kScalar;
}

Kernel ActiveKernel() { return ActiveDispatch().kernel; }

void SetKernelForTesting(Kernel kernel) {
  // Old tables are kept alive: a racing reader may still hold one, and
  // a test process only flips kernels a bounded number of times.
  static std::vector<std::unique_ptr<Dispatch>> tables;
  tables.push_back(std::make_unique<Dispatch>(MakeDispatch(kernel)));
  g_dispatch.store(tables.back().get(), std::memory_order_release);
}

size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 VertexId* out) {
  return ActiveDispatch().intersect(a.data(), a.size(), b.data(), b.size(),
                                    out);
}

size_t Difference(std::span<const VertexId> a, std::span<const VertexId> b,
                  VertexId* out) {
  return ActiveDispatch().difference(a.data(), a.size(), b.data(), b.size(),
                                     out);
}

size_t IntersectWith(Kernel kernel, std::span<const VertexId> a,
                     std::span<const VertexId> b, VertexId* out) {
  CSCE_CHECK(KernelSupported(kernel))
      << "setops kernel not supported: " << KernelName(kernel);
  return MakeDispatch(kernel).intersect(a.data(), a.size(), b.data(),
                                        b.size(), out);
}

size_t DifferenceWith(Kernel kernel, std::span<const VertexId> a,
                      std::span<const VertexId> b, VertexId* out) {
  CSCE_CHECK(KernelSupported(kernel))
      << "setops kernel not supported: " << KernelName(kernel);
  return MakeDispatch(kernel).difference(a.data(), a.size(), b.data(),
                                         b.size(), out);
}

size_t DifferenceManyBitmap(VertexId* acc, size_t acc_size,
                            std::span<const std::span<const VertexId>> lists,
                            DynamicBitset* marks) {
  for (std::span<const VertexId> list : lists) {
    for (VertexId v : list) marks->Set(v);
  }
  size_t k = 0;
  for (size_t i = 0; i < acc_size; ++i) {
    VertexId v = acc[i];
    if (!marks->Test(v)) acc[k++] = v;
  }
  // Restore the all-zero contract by clearing exactly the set bits —
  // O(Σ|list|), not O(universe).
  for (std::span<const VertexId> list : lists) {
    for (VertexId v : list) marks->Clear(v);
  }
  return k;
}

}  // namespace setops
}  // namespace csce
