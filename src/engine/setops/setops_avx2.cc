// AVX2 set-operation kernels. This translation unit is compiled with
// -mavx2 (see src/CMakeLists.txt) and must only be reached through the
// runtime dispatch in setops.cc, which checks cpu support first.
//
// Algorithm (the shuffle/gallop hybrid): lopsided inputs delegate to
// the scalar galloping path — doubling binary search is memory-bound
// and SIMD buys nothing. Comparable sizes run a block merge: load 8
// elements of each side, compare A's block against all 8 rotations of
// B's block (all-pairs equality in 8 cmp+or), and accumulate a per-lane
// match mask for the current A block across as many B blocks as overlap
// it. When B's frontier passes A's block maximum the verdict for every
// A lane is final: the block is emitted with one table-driven
// compress-permute (matches for intersection, non-matches for
// difference) and the mask resets. All loads/stores are unaligned
// (loadu/storeu) — no alignment UB — and stores write full 8-lane
// vectors, which is why setops.h's kOutPad slack exists.

#include "engine/setops/kernels.h"

#ifdef CSCE_SETOPS_X86

#include <immintrin.h>

#include <array>
#include <cstdint>
#include <utility>

namespace csce {
namespace setops {
namespace internal {
namespace {

// kCompress8.perm[mask] maps the set lanes of an 8-bit mask to the
// front (order-preserving); unset lanes follow so the permute result's
// tail is deterministic garbage inside the kOutPad slack.
struct Compress8Table {
  alignas(32) uint32_t perm[256][8];
};

constexpr Compress8Table MakeCompress8Table() {
  Compress8Table t{};
  for (uint32_t mask = 0; mask < 256; ++mask) {
    uint32_t k = 0;
    for (uint32_t lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) t.perm[mask][k++] = lane;
    }
    for (uint32_t lane = 0; lane < 8; ++lane) {
      if (!((mask >> lane) & 1)) t.perm[mask][k++] = lane;
    }
  }
  return t;
}

constexpr Compress8Table kCompress8 = MakeCompress8Table();

// Lane mask of A-block elements equal to *some* element of the B block:
// compare against every rotation of B. The 8 rotations are independent
// permutes (no serial dependency chain), then an OR tree and a single
// movemask.
inline uint32_t MatchMask8(__m256i va, __m256i vb) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  __m256i m0 = _mm256_cmpeq_epi32(va, vb);
  __m256i m1 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1));
  __m256i m2 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2));
  __m256i m3 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3));
  __m256i m4 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4));
  __m256i m5 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5));
  __m256i m6 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6));
  __m256i m7 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7));
  __m256i m = _mm256_or_si256(
      _mm256_or_si256(_mm256_or_si256(m0, m1), _mm256_or_si256(m2, m3)),
      _mm256_or_si256(_mm256_or_si256(m4, m5), _mm256_or_si256(m6, m7)));
  return static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

inline void CompressStore8(VertexId* dst, __m256i va, uint32_t mask) {
  __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompress8.perm[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_permutevar8x32_epi32(va, perm));
}

}  // namespace

size_t IntersectAvx2(const VertexId* a, size_t na, const VertexId* b,
                     size_t nb, VertexId* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (nb / na >= kGallopRatio) return IntersectScalar(a, na, b, nb, out);

  size_t i = 0, j = 0, k = 0;
  uint32_t amask = 0;  // matches found for a[i..i+8) in b[0..j)
  while (i + 8 <= na && j + 8 <= nb) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    amask |= MatchMask8(va, vb);
    VertexId a_max = a[i + 7];
    VertexId b_max = b[j + 7];
    if (a_max <= b_max) {
      // Every later B element exceeds a_max: the block's verdict is
      // final. Emit the matched lanes and move on.
      CompressStore8(out + k, va, amask);
      k += static_cast<size_t>(__builtin_popcount(amask));
      amask = 0;
      i += 8;
    }
    if (b_max <= a_max) j += 8;
  }

  // Scalar tail. `amask` (if non-zero) carries verdicts of the current
  // A block against all of b[0..j); a set lane is a confirmed match
  // whose B partner was already consumed.
  size_t lane = 0;
  while (i < na && j < nb) {
    if (lane < 8 && ((amask >> lane) & 1)) {
      out[k++] = a[i++];
      ++lane;
    } else if (a[i] < b[j]) {
      ++i;
      ++lane;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i++];
      ++lane;
      ++j;
    }
  }
  while (i < na && lane < 8) {
    if ((amask >> lane) & 1) out[k++] = a[i];
    ++i;
    ++lane;
  }
  return k;
}

size_t DifferenceAvx2(const VertexId* a, size_t na, const VertexId* b,
                      size_t nb, VertexId* out) {
  if (na == 0 || nb == 0) return DifferenceScalar(a, na, b, nb, out);
  if (nb / na >= kGallopRatio) return DifferenceScalar(a, na, b, nb, out);

  size_t i = 0, j = 0, k = 0;
  uint32_t amask = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    amask |= MatchMask8(va, vb);
    VertexId a_max = a[i + 7];
    VertexId b_max = b[j + 7];
    if (a_max <= b_max) {
      uint32_t keep = ~amask & 0xFFu;
      CompressStore8(out + k, va, keep);
      k += static_cast<size_t>(__builtin_popcount(keep));
      amask = 0;
      i += 8;
    }
    if (b_max <= a_max) j += 8;
  }

  size_t lane = 0;
  while (i < na && j < nb) {
    if (lane < 8 && ((amask >> lane) & 1)) {
      ++i;  // confirmed present in b: dropped
      ++lane;
    } else if (a[i] < b[j]) {
      out[k++] = a[i++];
      ++lane;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++lane;
      ++j;
    }
  }
  while (i < na) {
    if (!(lane < 8 && ((amask >> lane) & 1))) out[k++] = a[i];
    ++i;
    ++lane;
  }
  return k;
}

}  // namespace internal
}  // namespace setops
}  // namespace csce

#endif  // CSCE_SETOPS_X86
