#include "engine/executor.h"

#include <algorithm>
#include <limits>

#include "engine/setops/setops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace csce {
namespace {

constexpr uint64_t kDeadlineCheckInterval = 16384;

/// Process-wide engine counters. Registered once; flushed from each
/// run's ExecStats at the end of Run (never on the enumeration hot
/// path), so observability cannot perturb per-run results and the
/// aggregate over worker threads equals the serial totals exactly.
struct EngineMetrics {
  obs::Counter runs;
  obs::Counter embeddings;
  obs::Counter search_nodes;
  obs::Counter sce_recomputes;
  obs::Counter sce_reuses;
  obs::Counter morsels_claimed;
  obs::Histogram candidate_set_size;
  obs::Histogram run_seconds;

  static const EngineMetrics& Get() {
    static const EngineMetrics m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return EngineMetrics{r.counter("engine.runs"),
                           r.counter("engine.embeddings"),
                           r.counter("engine.search_nodes"),
                           r.counter("engine.sce_recomputes"),
                           r.counter("engine.sce_reuses"),
                           r.counter("engine.morsels_claimed"),
                           r.histogram("engine.candidate_set_size"),
                           r.histogram("engine.run_seconds")};
    }();
    return m;
  }
};

}  // namespace

Executor::Executor(const Ccsr& gc, const QueryClusters& qc, const Plan& plan)
    : gc_(gc), qc_(qc), plan_(plan) {}

size_t Executor::CandidateBound(uint32_t depth) const {
  const PlanPosition& pos = plan_.positions[depth];
  if (edges_[depth].empty()) {
    if (pos.seed_valid) {
      const ClusterView* view = qc_.Find(pos.seed_cluster);
      if (view == nullptr) return 0;
      return pos.seed_use_sources ? view->Sources().size()
                                  : view->Targets().size();
    }
    return gc_.LabelFrequency(pos.label);
  }
  size_t bound = std::numeric_limits<size_t>::max();
  for (const ResolvedEdge& e : edges_[depth]) {
    size_t rows = e.view == nullptr
                      ? 0
                      : (e.incoming ? e.view->MaxInRowLength()
                                    : e.view->MaxOutRowLength());
    bound = std::min(bound, rows);
  }
  return bound;
}

Status Executor::Prepare(const ExecOptions& options) {
  const size_t n = plan_.positions.size();
  options_ = &options;
  stats_ = ExecStats{};
  aborted_ = false;
  injective_ = plan_.variant != MatchVariant::kHomomorphic;
  deadline_check_counter_ = 0;

  edges_.assign(n, {});
  negs_.assign(n, {});
  restrictions_.assign(n, {});
  cache_slot_.assign(n, 0);
  // CandidateCache holds a VertexScratch (move-only); keep the buffers
  // across reuse of the same executor and just invalidate the entries.
  if (caches_.size() != n) {
    caches_.clear();
    caches_.resize(n);
  }
  for (CandidateCache& c : caches_) {
    c.valid = false;
    c.candidates.clear();
  }
  if (temp_.size() != n) {
    temp_.clear();
    temp_.resize(n);
  }
  cand_bound_.assign(n, 0);
  mapping_by_pos_.assign(n, kInvalidVertex);
  mapping_by_vertex_.assign(n, kInvalidVertex);
  used_.Resize(gc_.NumVertices());
  used_.Reset();

  std::vector<uint32_t> pos_of(n, 0);
  for (uint32_t j = 0; j < n; ++j) pos_of[plan_.positions[j].u] = j;

  for (uint32_t j = 0; j < n; ++j) {
    const PlanPosition& pos = plan_.positions[j];
    for (const EdgeConstraint& e : pos.edges) {
      edges_[j].push_back(
          ResolvedEdge{e.pos, qc_.Find(e.cluster), e.incoming});
    }
    for (const NegConstraint& c : pos.negations) {
      ResolvedNegation rn;
      rn.pos = c.pos;
      for (const ClusterView* view : qc_.Star(pos.label, c.other_label)) {
        // Forbidden arc f(w) -> f(u): candidates in Out(f(w)).
        if (c.forbid_from) rn.removals.emplace_back(view, /*use_out=*/true);
        // Forbidden arc f(u) -> f(w): candidates in In(f(w)).
        if (c.forbid_to) {
          if (view->id().directed) {
            rn.removals.emplace_back(view, /*use_out=*/false);
          } else if (!c.forbid_from) {
            // Undirected views: In == Out; avoid subtracting twice.
            rn.removals.emplace_back(view, /*use_out=*/true);
          }
        }
      }
      if (!rn.removals.empty()) negs_[j].push_back(std::move(rn));
    }
    // NEC cache sharing is only safe together with SCE reuse: an
    // aliased position recomputing into a shared slot would clobber the
    // buffer an outer recursion level is iterating.
    cache_slot_[j] = (plan_.use_sce && pos.cache_alias >= 0)
                         ? static_cast<uint32_t>(pos.cache_alias)
                         : j;
  }

  // Zero-allocation setup: size every hot-path buffer to its worst
  // case now, so ComputeCandidates never grows anything.
  size_t max_bound = 0;
  size_t max_lists = 0;
  size_t max_removals = 0;
  for (uint32_t j = 0; j < n; ++j) {
    cand_bound_[j] = CandidateBound(j);
    max_bound = std::max(max_bound, cand_bound_[j]);
    max_lists = std::max(max_lists, edges_[j].size());
    // Chained intersections ping-pong between the output buffer and the
    // depth's partner; single-list and seeded paths need no partner.
    if (edges_[j].size() >= 2) {
      temp_[j].Reserve(cand_bound_[j] + setops::kOutPad);
    }
    size_t removals = 0;
    for (const ResolvedNegation& rn : negs_[j]) removals += rn.removals.size();
    max_removals = std::max(max_removals, removals);
  }
  for (uint32_t j = 0; j < n; ++j) {
    // Reserve only grows, so a shared (NEC-aliased) slot ends up sized
    // for the largest of its positions.
    CandidateCache& c = caches_[cache_slot_[j]];
    c.candidates.Reserve(cand_bound_[j] + setops::kOutPad);
  }
  for (uint32_t j = 0; j < n; ++j) {
    caches_[j].dep_snapshot.reserve(plan_.positions[j].deps.size());
  }
  lists_.clear();
  lists_.reserve(max_lists);
  neg_lists_.clear();
  neg_lists_.reserve(max_removals);
  if (max_removals > 0) {
    neg_marks_.Resize(gc_.NumVertices());
    neg_marks_.Reset();
  }
  if (options.verify_sce) {
    sce_oracle_scratch_.Reserve(max_bound + setops::kOutPad);
  }

  for (const auto& [a, b] : options.restrictions) {
    if (a >= n || b >= n) {
      return Status::InvalidArgument("restriction vertex out of range");
    }
    uint32_t pa = pos_of[a];
    uint32_t pb = pos_of[b];
    // Enforce at the later position against the earlier mapping.
    if (pa < pb) {
      restrictions_[pb].push_back(Restriction{pa, /*require_greater=*/true});
    } else {
      restrictions_[pa].push_back(Restriction{pb, /*require_greater=*/false});
    }
  }
  return Status::OK();
}

bool Executor::CheckDeadline() {
  const bool has_deadline = options_->time_limit_seconds > 0;
  if (!has_deadline && options_->stop == nullptr) return true;
  if (++deadline_check_counter_ % kDeadlineCheckInterval != 0) return true;
  if (options_->stop != nullptr && options_->stop->StopRequested()) {
    stats_.cancelled = true;
    aborted_ = true;
    return false;
  }
  if (has_deadline && timer_.Seconds() > options_->time_limit_seconds) {
    stats_.timed_out = true;
    aborted_ = true;
    return false;
  }
  return true;
}

bool Executor::PassesRestrictions(uint32_t depth, VertexId v) const {
  for (const Restriction& r : restrictions_[depth]) {
    VertexId other = mapping_by_pos_[r.other_pos];
    if (r.require_greater ? (v <= other) : (v >= other)) return false;
  }
  return true;
}

void Executor::ComputeCandidates(uint32_t depth,
                                 setops::VertexScratch* out) {
  ++stats_.candidate_sets_computed;
  out->clear();
  const PlanPosition& pos = plan_.positions[depth];
  // Normally a no-op compare: Prepare reserved this bound. Growing here
  // trips the VertexScratch hot-growth counter the allocation test
  // watches.
  out->EnsureCapacity(cand_bound_[depth] + setops::kOutPad);

  if (edges_[depth].empty()) {
    // Seeded position: distinct endpoints of the smallest incident
    // cluster, or a label scan for isolated pattern vertices.
    if (pos.seed_valid) {
      const ClusterView* view = qc_.Find(pos.seed_cluster);
      if (view == nullptr) return;
      std::span<const VertexId> endpoints =
          pos.seed_use_sources ? view->Sources() : view->Targets();
      for (VertexId v : endpoints) {
        if (gc_.VertexLabel(v) == pos.label) out->push_back(v);
      }
    } else {
      for (VertexId v = 0; v < gc_.NumVertices(); ++v) {
        if (gc_.VertexLabel(v) == pos.label) out->push_back(v);
      }
    }
  } else {
    // Gather the neighbor lists and intersect smallest-first.
    lists_.clear();
    for (const ResolvedEdge& e : edges_[depth]) {
      if (e.view == nullptr) return;  // empty cluster: no candidates
      VertexId w = mapping_by_pos_[e.pos];
      lists_.push_back(e.incoming ? e.view->In(w) : e.view->Out(w));
      if (lists_.back().empty()) return;
    }
    // Insertion sort by size: the list count is the pattern vertex's
    // back-degree (almost always <= 8), where this beats std::sort's
    // dispatch overhead and allocates nothing.
    for (size_t i = 1; i < lists_.size(); ++i) {
      std::span<const VertexId> key = lists_[i];
      size_t j = i;
      for (; j > 0 && lists_[j - 1].size() > key.size(); --j) {
        lists_[j] = lists_[j - 1];
      }
      lists_[j] = key;
    }
    if (lists_.size() == 1) {
      out->Assign(lists_[0]);
    } else {
      // The kernels cannot write in place, so chained intersections
      // ping-pong between the depth's partner buffer and `out`, phased
      // so the last round lands in `out`.
      setops::VertexScratch& tmp = temp_[depth];
      tmp.EnsureCapacity(cand_bound_[depth] + setops::kOutPad);
      const size_t rounds = lists_.size() - 1;
      setops::VertexScratch* bufs[2] = {&tmp, out};
      size_t cur = rounds % 2;  // odd round count: start (and end) at out
      setops::VertexScratch* dst = bufs[cur];
      dst->set_size(setops::Intersect(lists_[0], lists_[1], dst->data()));
      for (size_t i = 2; i < lists_.size() && !dst->empty(); ++i) {
        setops::VertexScratch* src = dst;
        cur ^= 1;
        dst = bufs[cur];
        dst->set_size(
            setops::Intersect(src->span(), lists_[i], dst->data()));
      }
      // An early exit (empty intermediate) can strand the result in the
      // partner buffer; it is empty either way.
      if (dst != out) {
        CSCE_DCHECK(dst->empty());
        out->clear();
      }
    }
  }

  // LDF degree filter (injective variants): a candidate must be able
  // to host distinct images of all the pattern vertex's neighbors.
  if (pos.min_out_degree > 1 || pos.min_in_degree > 1) {
    VertexId* data = out->data();
    size_t kept = 0;
    for (size_t i = 0; i < out->size(); ++i) {
      VertexId v = data[i];
      if (gc_.OutDegree(v) >= pos.min_out_degree &&
          gc_.InDegree(v) >= pos.min_in_degree) {
        data[kept++] = v;
      }
    }
    out->set_size(kept);
  }

  // Vertex-induced negation: subtract the data-neighbors of every
  // earlier non-neighbor mapping.
  if (!negs_[depth].empty() && !out->empty()) {
    neg_lists_.clear();
    size_t total_removals = 0;
    for (const ResolvedNegation& rn : negs_[depth]) {
      VertexId w = mapping_by_pos_[rn.pos];
      for (const auto& [view, use_out] : rn.removals) {
        std::span<const VertexId> list = use_out ? view->Out(w) : view->In(w);
        if (!list.empty()) {
          neg_lists_.push_back(list);
          total_removals += list.size();
        }
      }
    }
    if (setops::UseBitmapDifference(out->size(), neg_lists_.size(),
                                    total_removals)) {
      // Dense path: mark all removal lists once, filter in one pass.
      out->set_size(setops::DifferenceManyBitmap(out->data(), out->size(),
                                                 neg_lists_, &neg_marks_));
    } else {
      for (std::span<const VertexId> list : neg_lists_) {
        // Difference is in-place safe (writes trail reads).
        out->set_size(setops::Difference(out->span(), list, out->data()));
        if (out->empty()) break;
      }
    }
  }

  stats_.candidate_set_size.RecordCount(out->size());
}

std::span<const VertexId> Executor::Candidates(uint32_t depth) {
  uint32_t slot = cache_slot_[depth];
  CandidateCache& cache = caches_[slot];
  const std::vector<uint32_t>& deps = plan_.positions[slot].deps;
  if (plan_.use_sce && cache.Fresh(deps, mapping_by_pos_)) {
    ++stats_.candidate_sets_reused;
    if (options_->verify_sce) {
      // SCE oracle: the reused set must be byte-identical to a fresh
      // recomputation. An aliased position recomputes its own base set,
      // which NEC guarantees equals the slot owner's.
      ComputeCandidates(depth, &sce_oracle_scratch_);
      --stats_.candidate_sets_computed;  // oracle work, not engine work
      CSCE_CHECK(sce_oracle_scratch_ == cache.candidates)
          << "SCE cache mismatch at position " << depth << " (slot " << slot
          << "): cached " << cache.candidates.size()
          << " candidates, recomputed " << sce_oracle_scratch_.size();
    }
    return cache.candidates.span();
  }
  ComputeCandidates(depth, &cache.candidates);
  cache.Store(deps, mapping_by_pos_);
  if (depth == options_->poison_sce_position && !cache.candidates.empty()) {
    cache.candidates.pop_back();  // test-only fault injection, see header
  }
  return cache.candidates.span();
}

bool Executor::Emit() {
  ++stats_.embeddings;
  if (options_->callback) {
    if (!options_->callback(mapping_by_vertex_)) {
      aborted_ = true;
      return false;
    }
  }
  if (options_->max_embeddings > 0 &&
      stats_.embeddings >= options_->max_embeddings) {
    stats_.limit_reached = true;
    aborted_ = true;
    return false;
  }
  return true;
}

bool Executor::Enumerate(uint32_t depth) {
  return EnumerateOver(depth, Candidates(depth));
}

bool Executor::EnumerateOver(uint32_t depth,
                             std::span<const VertexId> candidates) {
  const bool last = depth + 1 == plan_.positions.size();
  const VertexId u = plan_.positions[depth].u;

  // Count-only fast path: no per-candidate state is needed at the last
  // position of a homomorphic, unrestricted, callback-free query.
  if (last && !injective_ && restrictions_[depth].empty() &&
      !options_->callback && options_->max_embeddings == 0) {
    stats_.embeddings += candidates.size();
    stats_.search_nodes += candidates.size();
    return CheckDeadline();
  }

  for (VertexId v : candidates) {
    ++stats_.search_nodes;
    if (!CheckDeadline()) return false;
    if (injective_ && used_.Test(v)) continue;
    if (!restrictions_[depth].empty() && !PassesRestrictions(depth, v)) {
      continue;
    }
    mapping_by_pos_[depth] = v;
    mapping_by_vertex_[u] = v;
    if (last) {
      if (!Emit()) return false;
    } else {
      if (injective_) used_.Set(v);
      bool keep_going = Enumerate(depth + 1);
      if (injective_) used_.Clear(v);
      if (!keep_going) return false;
    }
  }
  mapping_by_pos_[depth] = kInvalidVertex;
  return true;
}

Status Executor::Run(const ExecOptions& options, ExecStats* stats) {
  // Zero the caller's stats before anything can fail: a reused
  // executor whose second Run errors out must not leave the first
  // run's counters behind (regression test in engine_test.cc).
  *stats = ExecStats{};
  CSCE_RETURN_IF_ERROR(Prepare(options));
  obs::Span span("engine.run");
  timer_.Restart();
  if (!plan_.positions.empty()) {
    if (options.root_claim) {
      // Morsel mode: drain root batches from the shared claim counter.
      // SCE caches persist across morsels, so positions independent of
      // the root mapping keep their reuse within this worker.
      std::span<const VertexId> morsel;
      while (!aborted_ && !(morsel = options.root_claim()).empty()) {
        ++stats_.morsels_claimed;
        obs::Span morsel_span("engine.morsel");
        if (!EnumerateOver(0, morsel)) break;
      }
    } else {
      Enumerate(0);
    }
  }
  stats_.seconds = timer_.Seconds();
  *stats = stats_;

  const EngineMetrics& m = EngineMetrics::Get();
  m.runs.Increment();
  m.embeddings.Add(stats_.embeddings);
  m.search_nodes.Add(stats_.search_nodes);
  m.sce_recomputes.Add(stats_.candidate_sets_computed);
  m.sce_reuses.Add(stats_.candidate_sets_reused);
  m.morsels_claimed.Add(stats_.morsels_claimed);
  m.candidate_set_size.Merge(stats_.candidate_set_size);
  m.run_seconds.Record(stats_.seconds);
  return Status::OK();
}

Status Executor::ComputeRootCandidates(const ExecOptions& options,
                                       std::vector<VertexId>* out) {
  CSCE_RETURN_IF_ERROR(Prepare(options));
  out->clear();
  if (!plan_.positions.empty()) {
    // Computed into the root's (still invalid) cache buffer, then
    // copied out: this is setup work, not the enumeration hot path.
    setops::VertexScratch& root = caches_[cache_slot_[0]].candidates;
    ComputeCandidates(0, &root);
    out->assign(root.data(), root.data() + root.size());
    root.clear();
  }
  return Status::OK();
}

}  // namespace csce
