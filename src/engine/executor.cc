#include "engine/executor.h"

#include <algorithm>
#include <limits>

#include "engine/setops/setops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace csce {
namespace {

constexpr uint64_t kDeadlineCheckInterval = 16384;

/// Process-wide engine counters. Registered once; flushed from each
/// run's ExecStats at the end of Run (never on the enumeration hot
/// path), so observability cannot perturb per-run results and the
/// aggregate over worker threads equals the serial totals exactly.
struct EngineMetrics {
  obs::Counter runs;
  obs::Counter embeddings;
  obs::Counter search_nodes;
  obs::Counter sce_recomputes;
  obs::Counter sce_reuses;
  obs::Counter morsels_claimed;
  obs::Counter intersect_elements;
  obs::Counter prune_candidates_removed;
  obs::Counter prune_extensions_skipped;
  obs::Counter prune_aux_hits;
  obs::Histogram candidate_set_size;
  obs::Histogram prune_shrink_ratio;
  obs::Histogram run_seconds;

  static const EngineMetrics& Get() {
    static const EngineMetrics m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return EngineMetrics{r.counter("engine.runs"),
                           r.counter("engine.embeddings"),
                           r.counter("engine.search_nodes"),
                           r.counter("engine.sce_recomputes"),
                           r.counter("engine.sce_reuses"),
                           r.counter("engine.morsels_claimed"),
                           r.counter("engine.intersect_elements"),
                           r.counter("prune.candidates_removed"),
                           r.counter("prune.extensions_skipped"),
                           r.counter("prune.aux_hits"),
                           r.histogram("engine.candidate_set_size"),
                           r.histogram("prune.shrink_ratio_pct"),
                           r.histogram("engine.run_seconds")};
    }();
    return m;
  }
};

/// splitmix64-style finalizer for the REE row-length fingerprint.
uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 29;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 32;
  return x;
}

}  // namespace

Executor::Executor(const Ccsr& gc, const QueryClusters& qc, const Plan& plan)
    : gc_(gc), qc_(qc), plan_(plan) {}

size_t Executor::CandidateBound(uint32_t depth) const {
  const PlanPosition& pos = plan_.positions[depth];
  if (edges_[depth].empty()) {
    if (pos.seed_valid) {
      const ClusterView* view = qc_.Find(pos.seed_cluster);
      if (view == nullptr) return 0;
      return pos.seed_use_sources ? view->Sources().size()
                                  : view->Targets().size();
    }
    return gc_.LabelFrequency(pos.label);
  }
  size_t bound = std::numeric_limits<size_t>::max();
  for (const ResolvedEdge& e : edges_[depth]) {
    size_t rows = e.view == nullptr
                      ? 0
                      : (e.incoming ? e.view->MaxInRowLength()
                                    : e.view->MaxOutRowLength());
    bound = std::min(bound, rows);
  }
  return bound;
}

Status Executor::Prepare(const ExecOptions& options) {
  const size_t n = plan_.positions.size();
  options_ = &options;
  stats_ = ExecStats{};
  aborted_ = false;
  injective_ = plan_.variant != MatchVariant::kHomomorphic;
  deadline_check_counter_ = 0;

  edges_.assign(n, {});
  negs_.assign(n, {});
  restrictions_.assign(n, {});
  cache_slot_.assign(n, 0);
  // CandidateCache holds a VertexScratch (move-only); keep the buffers
  // across reuse of the same executor and just invalidate the entries.
  if (caches_.size() != n) {
    caches_.clear();
    caches_.resize(n);
  }
  for (CandidateCache& c : caches_) {
    c.valid = false;
    c.candidates.clear();
    c.lpi_removed = 0;
    c.lpi_shrink_pct = -1;
  }
  if (temp_.size() != n) {
    temp_.clear();
    temp_.resize(n);
  }
  cand_bound_.assign(n, 0);
  sharded_ = options.shard != nullptr;
  // Shard-local CCSRs only hold edges incident to owned vertices, so
  // label masks and rows seen here can be partial: every prune pass is
  // forced off in shard mode (see ExecOptions::prune).
  prune_ = sharded_ ? PruneOptions{} : options.prune;
  last_lpi_removed_ = 0;
  last_lpi_shrink_pct_ = -1;
  mapping_by_pos_.assign(n, kInvalidVertex);
  mapping_by_vertex_.assign(n, kInvalidVertex);
  used_.Resize(gc_.NumVertices());
  used_.Reset();

  std::vector<uint32_t> pos_of(n, 0);
  for (uint32_t j = 0; j < n; ++j) pos_of[plan_.positions[j].u] = j;

  for (uint32_t j = 0; j < n; ++j) {
    const PlanPosition& pos = plan_.positions[j];
    for (const EdgeConstraint& e : pos.edges) {
      edges_[j].push_back(
          ResolvedEdge{e.pos, qc_.Find(e.cluster), e.incoming});
    }
    for (const NegConstraint& c : pos.negations) {
      ResolvedNegation rn;
      rn.pos = c.pos;
      for (const ClusterView* view : qc_.Star(pos.label, c.other_label)) {
        // Forbidden arc f(w) -> f(u): candidates in Out(f(w)).
        if (c.forbid_from) rn.removals.emplace_back(view, /*use_out=*/true);
        // Forbidden arc f(u) -> f(w): candidates in In(f(w)).
        if (c.forbid_to) {
          if (view->id().directed) {
            rn.removals.emplace_back(view, /*use_out=*/false);
          } else if (!c.forbid_from) {
            // Undirected views: In == Out; avoid subtracting twice.
            rn.removals.emplace_back(view, /*use_out=*/true);
          }
        }
      }
      if (!rn.removals.empty()) negs_[j].push_back(std::move(rn));
    }
    // NEC cache sharing is only safe together with SCE reuse: an
    // aliased position recomputing into a shared slot would clobber the
    // buffer an outer recursion level is iterating.
    cache_slot_[j] = (plan_.use_sce && pos.cache_alias >= 0)
                         ? static_cast<uint32_t>(pos.cache_alias)
                         : j;
  }

  // Zero-allocation setup: size every hot-path buffer to its worst
  // case now, so ComputeCandidates never grows anything.
  size_t max_bound = 0;
  size_t max_lists = 0;
  size_t max_removals = 0;
  for (uint32_t j = 0; j < n; ++j) {
    cand_bound_[j] = CandidateBound(j);
    max_bound = std::max(max_bound, cand_bound_[j]);
    max_lists = std::max(max_lists, edges_[j].size());
    // Chained intersections ping-pong between the output buffer and the
    // depth's partner; single-list and seeded paths need no partner.
    if (edges_[j].size() >= 2) {
      temp_[j].Reserve(cand_bound_[j] + setops::kOutPad);
    }
    size_t removals = 0;
    for (const ResolvedNegation& rn : negs_[j]) removals += rn.removals.size();
    max_removals = std::max(max_removals, removals);
  }
  for (uint32_t j = 0; j < n; ++j) {
    // Reserve only grows, so a shared (NEC-aliased) slot ends up sized
    // for the largest of its positions.
    CandidateCache& c = caches_[cache_slot_[j]];
    c.candidates.Reserve(cand_bound_[j] + setops::kOutPad);
  }
  for (uint32_t j = 0; j < n; ++j) {
    // Sized here, only overwritten by Store: the snapshot write on the
    // hot path is a plain element copy, never a (re)allocation.
    caches_[j].dep_snapshot.resize(plan_.positions[j].deps.size());
  }
  // --- Proactive pruning state (engine/prune/) ----------------------
  aux_steps_.assign(n, {});
  aux_span_.assign(n, std::span<const VertexId>{});
  aux_steps_done_.assign(n, 0);
  aux_steps_total_.assign(n, 0);
  std::vector<size_t> aux_buf_bounds;
  if (prune_.aux) {
    for (uint32_t t = 0; t < n; ++t) {
      if (!plan_.positions[t].aux_enabled || edges_[t].empty()) continue;
      // Chain the steps in dependency order — the planner emits edge
      // constraints ordered by position, but sort defensively: the
      // span must be refined as the prefix grows, never backwards.
      std::vector<uint32_t> idx(edges_[t].size());
      for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
        return edges_[t][a].pos < edges_[t][b].pos;
      });
      aux_steps_total_[t] = static_cast<uint32_t>(idx.size());
      size_t bound = std::numeric_limits<size_t>::max();
      for (uint32_t s = 0; s < idx.size(); ++s) {
        const ResolvedEdge& e = edges_[t][idx[s]];
        size_t rows = e.view == nullptr
                          ? 0
                          : (e.incoming ? e.view->MaxInRowLength()
                                        : e.view->MaxOutRowLength());
        bound = std::min(bound, rows);
        int32_t buf = -1;
        if (s > 0) {
          // Step s's result is at most as long as the shortest row it
          // has absorbed so far; that bound is final at Prepare time.
          buf = static_cast<int32_t>(aux_buf_bounds.size());
          aux_buf_bounds.push_back(bound);
        }
        aux_steps_[e.pos].push_back(AuxStep{t, s, e.view, e.incoming, buf});
      }
    }
  }
  if (aux_bufs_.size() != aux_buf_bounds.size()) {
    aux_bufs_.clear();
    aux_bufs_.resize(aux_buf_bounds.size());
  }
  for (size_t i = 0; i < aux_buf_bounds.size(); ++i) {
    aux_bufs_[i].Reserve(aux_buf_bounds[i] + setops::kOutPad);
  }
  ree_tables_.assign(n, ReeTable{});
  ree_active_.assign(n, 0);
  ree_views_.clear();
  // Restrictions compare sibling values directly, so swapping two
  // interchangeable siblings is not result-preserving under them:
  // REE requires an unrestricted run.
  if (prune_.ree && options.restrictions.empty()) {
    bool any_ree = false;
    for (uint32_t j = 0; j < n; ++j) {
      ree_active_[j] = plan_.positions[j].ree_enabled && j > 0 && j + 1 < n;
      any_ree |= ree_active_[j] != 0;
    }
    if (any_ree) {
      for (uint32_t j = 0; j < n; ++j) {
        for (const ResolvedEdge& e : edges_[j]) {
          if (e.view != nullptr) ree_views_.push_back(e.view);
        }
        for (const ResolvedNegation& rn : negs_[j]) {
          for (const auto& removal : rn.removals) {
            ree_views_.push_back(removal.first);
          }
        }
      }
      std::sort(ree_views_.begin(), ree_views_.end());
      ree_views_.erase(std::unique(ree_views_.begin(), ree_views_.end()),
                       ree_views_.end());
    }
  }

  lists_.clear();
  lists_.reserve(max_lists);
  neg_lists_.clear();
  neg_lists_.reserve(max_removals);
  if (max_removals > 0) {
    neg_marks_.Resize(gc_.NumVertices());
    neg_marks_.Reset();
  }
  if (options.verify_sce) {
    sce_oracle_scratch_.Reserve(max_bound + setops::kOutPad);
  }
  if (sharded_) {
    if (options.shard->owner.size() < gc_.NumVertices()) {
      return Status::InvalidArgument("shard owner table smaller than graph");
    }
    if (owned_scratch_.size() != n) {
      owned_scratch_.clear();
      owned_scratch_.resize(n);
    }
    // The owned-filter buffers are per depth: the filtered list at
    // depth d stays live while the recursion below d runs.
    for (uint32_t j = 0; j < n; ++j) {
      owned_scratch_[j].Reserve(cand_bound_[j] + setops::kOutPad);
    }
    // The ship-set intersection uses only the locally owned subset of a
    // position's parent rows, so its bound is the largest single row —
    // cand_bound_ (the min over all rows) can be smaller.
    size_t ship_bound = 0;
    for (uint32_t j = 0; j < n; ++j) {
      for (const ResolvedEdge& e : edges_[j]) {
        if (e.view == nullptr) continue;
        ship_bound = std::max(
            ship_bound, static_cast<size_t>(e.incoming
                                                ? e.view->MaxInRowLength()
                                                : e.view->MaxOutRowLength()));
      }
    }
    ship_a_.Reserve(ship_bound + setops::kOutPad);
    ship_b_.Reserve(ship_bound + setops::kOutPad);
    ship_buckets_.resize(options.shard->num_shards);
    for (std::vector<VertexId>& b : ship_buckets_) b.clear();
  }

  for (const auto& [a, b] : options.restrictions) {
    if (a >= n || b >= n) {
      return Status::InvalidArgument("restriction vertex out of range");
    }
    uint32_t pa = pos_of[a];
    uint32_t pb = pos_of[b];
    // Enforce at the later position against the earlier mapping.
    if (pa < pb) {
      restrictions_[pb].push_back(Restriction{pa, /*require_greater=*/true});
    } else {
      restrictions_[pa].push_back(Restriction{pb, /*require_greater=*/false});
    }
  }
  return Status::OK();
}

bool Executor::CheckDeadline() {
  const bool has_deadline = options_->time_limit_seconds > 0;
  if (!has_deadline && options_->stop == nullptr) return true;
  if (++deadline_check_counter_ % kDeadlineCheckInterval != 0) return true;
  if (options_->stop != nullptr && options_->stop->StopRequested()) {
    stats_.cancelled = true;
    aborted_ = true;
    return false;
  }
  if (has_deadline && timer_.Seconds() > options_->time_limit_seconds) {
    stats_.timed_out = true;
    aborted_ = true;
    return false;
  }
  return true;
}

bool Executor::PassesRestrictions(uint32_t depth, VertexId v) const {
  for (const Restriction& r : restrictions_[depth]) {
    VertexId other = mapping_by_pos_[r.other_pos];
    if (r.require_greater ? (v <= other) : (v >= other)) return false;
  }
  return true;
}

void Executor::ComputeCandidates(uint32_t depth,
                                 setops::VertexScratch* out) {
  ++stats_.candidate_sets_computed;
  out->clear();
  const PlanPosition& pos = plan_.positions[depth];
  // Normally a no-op compare: Prepare reserved this bound. Growing here
  // trips the VertexScratch hot-growth counter the allocation test
  // watches.
  out->EnsureCapacity(cand_bound_[depth] + setops::kOutPad);

  if (edges_[depth].empty()) {
    // Seeded position: distinct endpoints of the smallest incident
    // cluster, or a label scan for isolated pattern vertices.
    if (pos.seed_valid) {
      const ClusterView* view = qc_.Find(pos.seed_cluster);
      if (view == nullptr) return;
      std::span<const VertexId> endpoints =
          pos.seed_use_sources ? view->Sources() : view->Targets();
      for (VertexId v : endpoints) {
        if (gc_.VertexLabel(v) == pos.label) out->push_back(v);
      }
    } else {
      for (VertexId v = 0; v < gc_.NumVertices(); ++v) {
        if (gc_.VertexLabel(v) == pos.label) out->push_back(v);
      }
    }
  } else if (prune_.aux && aux_steps_total_[depth] != 0 &&
             aux_steps_done_[depth] == aux_steps_total_[depth]) {
    // Aux projection (prune pass "aux"): the span has already absorbed
    // every backward row along the current prefix. Intersecting sorted
    // sets is order-independent, so the span IS the base candidate set
    // the gather-and-intersect path below would produce.
    ++stats_.prune_aux_hits;
    out->Assign(aux_span_[depth]);
  } else {
    // Gather the neighbor lists and intersect smallest-first.
    lists_.clear();
    for (const ResolvedEdge& e : edges_[depth]) {
      if (e.view == nullptr) return;  // empty cluster: no candidates
      VertexId w = mapping_by_pos_[e.pos];
      lists_.push_back(e.incoming ? e.view->In(w) : e.view->Out(w));
      if (lists_.back().empty()) return;
    }
    // Insertion sort by size: the list count is the pattern vertex's
    // back-degree (almost always <= 8), where this beats std::sort's
    // dispatch overhead and allocates nothing.
    for (size_t i = 1; i < lists_.size(); ++i) {
      std::span<const VertexId> key = lists_[i];
      size_t j = i;
      for (; j > 0 && lists_[j - 1].size() > key.size(); --j) {
        lists_[j] = lists_[j - 1];
      }
      lists_[j] = key;
    }
    if (lists_.size() == 1) {
      out->Assign(lists_[0]);
    } else {
      // The kernels cannot write in place, so chained intersections
      // ping-pong between the depth's partner buffer and `out`, phased
      // so the last round lands in `out`.
      setops::VertexScratch& tmp = temp_[depth];
      tmp.EnsureCapacity(cand_bound_[depth] + setops::kOutPad);
      const size_t rounds = lists_.size() - 1;
      setops::VertexScratch* bufs[2] = {&tmp, out};
      size_t cur = rounds % 2;  // odd round count: start (and end) at out
      setops::VertexScratch* dst = bufs[cur];
      stats_.intersect_elements += lists_[0].size() + lists_[1].size();
      dst->set_size(setops::Intersect(lists_[0], lists_[1], dst->data()));
      for (size_t i = 2; i < lists_.size() && !dst->empty(); ++i) {
        setops::VertexScratch* src = dst;
        cur ^= 1;
        dst = bufs[cur];
        stats_.intersect_elements += src->size() + lists_[i].size();
        dst->set_size(
            setops::Intersect(src->span(), lists_[i], dst->data()));
      }
      // An early exit (empty intermediate) can strand the result in the
      // partner buffer; it is empty either way.
      if (dst != out) {
        CSCE_DCHECK(dst->empty());
        out->clear();
      }
    }
  }

  // LPI label-pair prefilter (prune pass "lpi"): a candidate must have
  // neighbors covering every label bit the pattern demands around this
  // vertex at later positions. The masks fold labels mod 64
  // (Ccsr::LabelBit), so the test is conservative — it only removes
  // vertices that provably cannot satisfy some later edge constraint.
  last_lpi_removed_ = 0;
  last_lpi_shrink_pct_ = -1;
  const uint64_t lpi_out = prune_.lpi ? pos.lpi_req_out : 0;
  const uint64_t lpi_in = prune_.lpi ? pos.lpi_req_in : 0;
  if ((lpi_out | lpi_in) != 0) {
    const size_t base = out->size();
    VertexId* data = out->data();
    size_t kept = 0;
    for (size_t i = 0; i < base; ++i) {
      VertexId v = data[i];
      if ((gc_.OutLabelMask(v) & lpi_out) == lpi_out &&
          (gc_.InLabelMask(v) & lpi_in) == lpi_in) {
        data[kept++] = v;
      }
    }
    out->set_size(kept);
    last_lpi_removed_ = base - kept;
    last_lpi_shrink_pct_ =
        base == 0 ? 0 : static_cast<int32_t>(100 * (base - kept) / base);
    stats_.prune_candidates_removed += last_lpi_removed_;
    stats_.prune_shrink_ratio.RecordCount(
        static_cast<uint64_t>(last_lpi_shrink_pct_));
  }

  // LDF degree filter (injective variants): a candidate must be able
  // to host distinct images of all the pattern vertex's neighbors.
  if (pos.min_out_degree > 1 || pos.min_in_degree > 1) {
    VertexId* data = out->data();
    size_t kept = 0;
    for (size_t i = 0; i < out->size(); ++i) {
      VertexId v = data[i];
      if (gc_.OutDegree(v) >= pos.min_out_degree &&
          gc_.InDegree(v) >= pos.min_in_degree) {
        data[kept++] = v;
      }
    }
    out->set_size(kept);
  }

  // Vertex-induced negation: subtract the data-neighbors of every
  // earlier non-neighbor mapping.
  if (!negs_[depth].empty() && !out->empty()) {
    neg_lists_.clear();
    size_t total_removals = 0;
    for (const ResolvedNegation& rn : negs_[depth]) {
      VertexId w = mapping_by_pos_[rn.pos];
      for (const auto& [view, use_out] : rn.removals) {
        std::span<const VertexId> list = use_out ? view->Out(w) : view->In(w);
        if (!list.empty()) {
          neg_lists_.push_back(list);
          total_removals += list.size();
        }
      }
    }
    if (setops::UseBitmapDifference(out->size(), neg_lists_.size(),
                                    total_removals)) {
      // Dense path: mark all removal lists once, filter in one pass.
      out->set_size(setops::DifferenceManyBitmap(out->data(), out->size(),
                                                 neg_lists_, &neg_marks_));
    } else {
      for (std::span<const VertexId> list : neg_lists_) {
        // Difference is in-place safe (writes trail reads).
        out->set_size(setops::Difference(out->span(), list, out->data()));
        if (out->empty()) break;
      }
    }
  }

  stats_.candidate_set_size.RecordCount(out->size());
}

bool Executor::RunAuxSteps(uint32_t depth) {
  const VertexId w = mapping_by_pos_[depth];
  for (const AuxStep& s : aux_steps_[depth]) {
    if (s.view == nullptr) return false;  // empty cluster: always cuts
    std::span<const VertexId> row =
        s.incoming ? s.view->In(w) : s.view->Out(w);
    if (s.step == 0) {
      // Zero copy: the first row IS the partial projection. The span
      // stays valid for the whole subtree (cluster storage is stable).
      aux_span_[s.target] = row;
      aux_steps_done_[s.target] = 1;
    } else {
      std::span<const VertexId> prev = aux_span_[s.target];
      setops::VertexScratch& buf = aux_bufs_[s.buf];
      // No-op compare in the steady state: Prepare sized each step
      // buffer to the shortest absorbed row's maximum length.
      buf.EnsureCapacity(std::min(prev.size(), row.size()) + setops::kOutPad);
      stats_.intersect_elements += prev.size() + row.size();
      buf.set_size(setops::Intersect(prev, row, buf.data()));
      aux_span_[s.target] = buf.span();
      aux_steps_done_[s.target] = s.step + 1;
    }
    if (aux_span_[s.target].empty()) return false;
  }
  return true;
}

uint64_t Executor::ReeKey(VertexId v) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const ClusterView* view : ree_views_) {
    h = MixHash(h ^ view->Out(v).size());
    if (view->id().directed) h = MixHash(h ^ view->In(v).size());
  }
  return h;
}

bool Executor::ReeInterchangeable(VertexId a, VertexId b) const {
  auto rows_equal = [&](std::span<const VertexId> ra,
                        std::span<const VertexId> rb) {
    if (ra.size() != rb.size()) return false;
    for (size_t i = 0; i < ra.size(); ++i) {
      // Element-wise equal, and neither row may touch a or b: a row
      // containing one of them means the (a b) transposition would
      // alter adjacency (self-loop / mutual-arc asymmetry).
      if (ra[i] != rb[i] || ra[i] == a || ra[i] == b) return false;
    }
    return true;
  };
  for (const ClusterView* view : ree_views_) {
    if (!rows_equal(view->Out(a), view->Out(b))) return false;
    if (view->id().directed && !rows_equal(view->In(a), view->In(b))) {
      return false;
    }
  }
  return true;
}

bool Executor::ReeSkip(uint32_t depth, VertexId v) {
  const ReeTable& table = ree_tables_[depth];
  if (table.count == 0) return false;  // common case: no key to compute
  const uint64_t key = ReeKey(v);
  for (uint32_t i = 0; i < table.count; ++i) {
    if (table.slots[i].key == key &&
        ReeInterchangeable(table.slots[i].v, v)) {
      return true;
    }
  }
  return false;
}

void Executor::ReeInsert(uint32_t depth, VertexId v) {
  ReeTable& table = ree_tables_[depth];
  const uint64_t key = ReeKey(v);
  if (table.count < kReeTableEntries) {
    table.slots[table.count++] = ReeEntry{key, v};
  } else {
    table.slots[table.next] = ReeEntry{key, v};
    table.next = (table.next + 1) % kReeTableEntries;
  }
}

std::span<const VertexId> Executor::Candidates(uint32_t depth) {
  uint32_t slot = cache_slot_[depth];
  CandidateCache& cache = caches_[slot];
  const std::vector<uint32_t>& deps = plan_.positions[slot].deps;
  if (plan_.use_sce && cache.Fresh(deps, mapping_by_pos_)) {
    ++stats_.candidate_sets_reused;
    // Re-add the entry's LPI contribution so the prune counters track
    // consumption, not the thread-dependent compute/reuse split.
    stats_.prune_candidates_removed += cache.lpi_removed;
    if (cache.lpi_shrink_pct >= 0) {
      stats_.prune_shrink_ratio.RecordCount(
          static_cast<uint64_t>(cache.lpi_shrink_pct));
    }
    if (options_->verify_sce) {
      // SCE oracle: the reused set must be byte-identical to a fresh
      // recomputation. An aliased position recomputes its own base set,
      // which NEC guarantees equals the slot owner's.
      const uint64_t removed = stats_.prune_candidates_removed;
      const uint64_t intersected = stats_.intersect_elements;
      const uint64_t aux_hits = stats_.prune_aux_hits;
      ComputeCandidates(depth, &sce_oracle_scratch_);
      --stats_.candidate_sets_computed;  // oracle work, not engine work
      stats_.prune_candidates_removed = removed;
      stats_.intersect_elements = intersected;
      stats_.prune_aux_hits = aux_hits;
      CSCE_CHECK(sce_oracle_scratch_ == cache.candidates)
          << "SCE cache mismatch at position " << depth << " (slot " << slot
          << "): cached " << cache.candidates.size()
          << " candidates, recomputed " << sce_oracle_scratch_.size();
    }
    return cache.candidates.span();
  }
  ComputeCandidates(depth, &cache.candidates);
  cache.Store(deps, mapping_by_pos_);
  cache.lpi_removed = last_lpi_removed_;
  cache.lpi_shrink_pct = last_lpi_shrink_pct_;
  if (depth == options_->poison_sce_position && !cache.candidates.empty()) {
    cache.candidates.pop_back();  // test-only fault injection, see header
  }
  return cache.candidates.span();
}

bool Executor::Emit() {
  ++stats_.embeddings;
  if (options_->callback) {
    if (!options_->callback(mapping_by_vertex_)) {
      aborted_ = true;
      return false;
    }
  }
  if (options_->max_embeddings > 0 &&
      stats_.embeddings >= options_->max_embeddings) {
    stats_.limit_reached = true;
    aborted_ = true;
    return false;
  }
  return true;
}

bool Executor::Enumerate(uint32_t depth) {
  if (sharded_) {
    // Depth 0 is reached here only outside morsel mode: enumerate the
    // owned slice (every shard covers its own roots).
    return depth == 0 ? EnumerateOwned(0) : EnumerateSharded(depth);
  }
  return EnumerateOver(depth, Candidates(depth));
}

bool Executor::EnumerateSharded(uint32_t depth) {
  const ShardSpec& spec = *options_->shard;
  if (edges_[depth].empty()) {
    // The candidate set is mapping-independent (seed or label scan), so
    // every shard holds the full set and enumerates its owned slice.
    // The shard that owns this prefix broadcasts it once; kLocalOnly
    // receivers enumerate without re-broadcasting, covering each slice
    // exactly once.
    for (uint32_t t = 0; t < spec.num_shards; ++t) {
      if (t != spec.shard_id) {
        EmitTask(ShardTask::Kind::kLocalOnly, t, depth, {});
      }
    }
    return EnumerateOwned(depth);
  }
  bool local_pivot = false;
  for (const ResolvedEdge& e : edges_[depth]) {
    if (spec.owner[mapping_by_pos_[e.pos]] == spec.shard_id) {
      local_pivot = true;
      break;
    }
  }
  if (!local_pivot) {
    // Every parent row here may be incomplete (no parent mapping is
    // owned locally), so hand the whole extension to the owner of the
    // first parent — exclusively: enumerating nothing locally keeps
    // every candidate handled exactly once.
    EmitTask(ShardTask::Kind::kForward,
             spec.owner[mapping_by_pos_[edges_[depth][0].pos]], depth, {});
    return true;
  }
  ShipRemoteCandidates(depth);
  return EnumerateOwned(depth);
}

bool Executor::EnumerateOwned(uint32_t depth) {
  const ShardSpec& spec = *options_->shard;
  std::span<const VertexId> base = Candidates(depth);
  // Copied out of the (possibly NEC-shared) cache slot: the filtered
  // list must survive the recursion below this depth.
  setops::VertexScratch& own = owned_scratch_[depth];
  own.EnsureCapacity(base.size());
  own.clear();
  for (VertexId v : base) {
    if (spec.owner[v] == spec.shard_id) own.push_back(v);
  }
  return EnumerateOver(depth, own.span());
}

void Executor::ShipRemoteCandidates(uint32_t depth) {
  const ShardSpec& spec = *options_->shard;
  // Intersect only the rows of locally owned parent mappings: 1-hop
  // replication makes exactly those rows complete, so the result is a
  // superset of the true candidate set (each true candidate lies in
  // every parent row, including the owned ones). The owner of each
  // shipped candidate then intersects against its own complete local
  // candidate set (kVerify), which removes the false positives and
  // applies the degree filter and negations exactly.
  lists_.clear();
  for (const ResolvedEdge& e : edges_[depth]) {
    VertexId w = mapping_by_pos_[e.pos];
    if (spec.owner[w] != spec.shard_id) continue;
    // An owned parent with no local view (or an empty row) means the
    // edge does not exist anywhere: the true candidate set is empty.
    if (e.view == nullptr) return;
    std::span<const VertexId> row = e.incoming ? e.view->In(w) : e.view->Out(w);
    if (row.empty()) return;
    lists_.push_back(row);
  }
  CSCE_DCHECK(!lists_.empty());
  for (size_t i = 1; i < lists_.size(); ++i) {
    std::span<const VertexId> key = lists_[i];
    size_t j = i;
    for (; j > 0 && lists_[j - 1].size() > key.size(); --j) {
      lists_[j] = lists_[j - 1];
    }
    lists_[j] = key;
  }
  std::span<const VertexId> ship = lists_[0];
  if (lists_.size() > 1) {
    setops::VertexScratch* bufs[2] = {&ship_a_, &ship_b_};
    size_t cur = 0;
    bufs[cur]->EnsureCapacity(std::min(lists_[0].size(), lists_[1].size()) +
                              setops::kOutPad);
    bufs[cur]->set_size(
        setops::Intersect(lists_[0], lists_[1], bufs[cur]->data()));
    for (size_t i = 2; i < lists_.size() && !bufs[cur]->empty(); ++i) {
      size_t nxt = cur ^ 1;
      bufs[nxt]->EnsureCapacity(bufs[cur]->size() + setops::kOutPad);
      bufs[nxt]->set_size(
          setops::Intersect(bufs[cur]->span(), lists_[i], bufs[nxt]->data()));
      cur = nxt;
    }
    ship = bufs[cur]->span();
  }
  for (VertexId c : ship) {
    uint32_t t = spec.owner[c];
    if (t != spec.shard_id) ship_buckets_[t].push_back(c);
  }
  for (uint32_t t = 0; t < spec.num_shards; ++t) {
    if (ship_buckets_[t].empty()) continue;
    EmitTask(ShardTask::Kind::kVerify, t, depth, std::move(ship_buckets_[t]));
    ship_buckets_[t].clear();  // moved-from: reset to a known state
  }
}

void Executor::EmitTask(ShardTask::Kind kind, uint32_t target, uint32_t depth,
                        std::vector<VertexId> candidates) {
  ShardTask task;
  task.kind = kind;
  task.target_shard = target;
  task.depth = depth;
  task.mapping.assign(mapping_by_pos_.begin(), mapping_by_pos_.begin() + depth);
  task.candidates = std::move(candidates);
  options_->shard->emit(std::move(task));
}

bool Executor::EnumerateOver(uint32_t depth,
                             std::span<const VertexId> candidates) {
  const bool last = depth + 1 == plan_.positions.size();
  const VertexId u = plan_.positions[depth].u;

  // Count-only fast path: no per-candidate state is needed at the last
  // position of a homomorphic, unrestricted, callback-free query.
  if (last && !injective_ && restrictions_[depth].empty() &&
      !options_->callback && options_->max_embeddings == 0) {
    stats_.embeddings += candidates.size();
    stats_.search_nodes += candidates.size();
    return CheckDeadline();
  }

  const bool aux_here = !aux_steps_[depth].empty();
  const bool ree_here = ree_active_[depth] != 0;
  if (ree_here) {
    // The memo only holds under the current prefix: every new sibling
    // loop at this depth starts empty.
    ree_tables_[depth].count = 0;
    ree_tables_[depth].next = 0;
  }
  for (VertexId v : candidates) {
    ++stats_.search_nodes;
    if (!CheckDeadline()) return false;
    if (injective_ && used_.Test(v)) continue;
    if (!restrictions_[depth].empty() && !PassesRestrictions(depth, v)) {
      continue;
    }
    mapping_by_pos_[depth] = v;
    mapping_by_vertex_[u] = v;
    if (last) {
      if (!Emit()) return false;
    } else {
      if (aux_here && !RunAuxSteps(depth)) {
        // Some later position's projection is already empty under v:
        // no extension of this prefix can complete.
        ++stats_.prune_extensions_skipped;
        continue;
      }
      if (ree_here && ReeSkip(depth, v)) {
        ++stats_.prune_extensions_skipped;
        continue;
      }
      const uint64_t embeddings_before = stats_.embeddings;
      if (injective_) used_.Set(v);
      bool keep_going = Enumerate(depth + 1);
      if (injective_) used_.Clear(v);
      if (!keep_going) return false;
      // Only a COMPLETED empty subtree is proof: an aborted one
      // (limit/timeout) returned above and never reaches the memo.
      if (ree_here && stats_.embeddings == embeddings_before) {
        ReeInsert(depth, v);
      }
    }
  }
  mapping_by_pos_[depth] = kInvalidVertex;
  return true;
}

Status Executor::Run(const ExecOptions& options, ExecStats* stats) {
  // Zero the caller's stats before anything can fail: a reused
  // executor whose second Run errors out must not leave the first
  // run's counters behind (regression test in engine_test.cc).
  *stats = ExecStats{};
  CSCE_RETURN_IF_ERROR(Prepare(options));
  obs::Span span("engine.run");
  timer_.Restart();
  if (!plan_.positions.empty()) {
    if (options.root_claim) {
      // Morsel mode: drain root batches from the shared claim counter.
      // SCE caches persist across morsels, so positions independent of
      // the root mapping keep their reuse within this worker.
      std::span<const VertexId> morsel;
      while (!aborted_ && !(morsel = options.root_claim()).empty()) {
        ++stats_.morsels_claimed;
        obs::Span morsel_span("engine.morsel");
        if (!EnumerateOver(0, morsel)) break;
      }
    } else {
      Enumerate(0);
    }
  }
  stats_.seconds = timer_.Seconds();
  *stats = stats_;

  const EngineMetrics& m = EngineMetrics::Get();
  m.runs.Increment();
  m.embeddings.Add(stats_.embeddings);
  m.search_nodes.Add(stats_.search_nodes);
  m.sce_recomputes.Add(stats_.candidate_sets_computed);
  m.sce_reuses.Add(stats_.candidate_sets_reused);
  m.morsels_claimed.Add(stats_.morsels_claimed);
  m.intersect_elements.Add(stats_.intersect_elements);
  m.prune_candidates_removed.Add(stats_.prune_candidates_removed);
  m.prune_extensions_skipped.Add(stats_.prune_extensions_skipped);
  m.prune_aux_hits.Add(stats_.prune_aux_hits);
  m.candidate_set_size.Merge(stats_.candidate_set_size);
  m.prune_shrink_ratio.Merge(stats_.prune_shrink_ratio);
  m.run_seconds.Record(stats_.seconds);
  return Status::OK();
}

Status Executor::PrepareForTasks(const ExecOptions& options) {
  return Prepare(options);
}

Status Executor::RunRootMorsels() {
  if (options_ == nullptr) {
    return Status::InvalidArgument("PrepareForTasks not called");
  }
  if (aborted_ || plan_.positions.empty() || !options_->root_claim) {
    return Status::OK();
  }
  timer_.Restart();
  std::span<const VertexId> morsel;
  while (!aborted_ && !(morsel = options_->root_claim()).empty()) {
    ++stats_.morsels_claimed;
    if (!EnumerateOver(0, morsel)) break;
  }
  stats_.seconds += timer_.Seconds();
  return Status::OK();
}

Status Executor::SeedPrefix(std::span<const VertexId> prefix) {
  for (uint32_t j = 0; j < prefix.size(); ++j) {
    VertexId v = prefix[j];
    if (v >= gc_.NumVertices() || gc_.VertexLabel(v) != plan_.positions[j].label ||
        (injective_ && used_.Test(v))) {
      // Roll back the part already seeded and reject: prefixes arrive
      // over the wire and must not be trusted.
      ClearPrefix(prefix.subspan(0, j));
      return Status::InvalidArgument("invalid shard task prefix");
    }
    mapping_by_pos_[j] = v;
    mapping_by_vertex_[plan_.positions[j].u] = v;
    if (injective_) used_.Set(v);
  }
  return Status::OK();
}

void Executor::ClearPrefix(std::span<const VertexId> prefix) {
  for (uint32_t j = 0; j < prefix.size(); ++j) {
    if (injective_) used_.Clear(prefix[j]);
    mapping_by_pos_[j] = kInvalidVertex;
    mapping_by_vertex_[plan_.positions[j].u] = kInvalidVertex;
  }
}

Status Executor::RunTask(const ShardTask& task) {
  if (options_ == nullptr || !sharded_) {
    return Status::InvalidArgument("PrepareForTasks not called in shard mode");
  }
  if (aborted_) return Status::OK();  // outcome decided: drain cheaply
  const uint32_t depth = task.depth;
  const size_t n = plan_.positions.size();
  if (depth == 0 || depth >= n || task.mapping.size() != depth) {
    return Status::InvalidArgument("malformed shard task");
  }
  const ShardSpec& spec = *options_->shard;
  if (task.target_shard != spec.shard_id) {
    return Status::InvalidArgument("shard task routed to wrong shard");
  }
  const bool edgeless = edges_[depth].empty();
  if (task.kind == ShardTask::Kind::kLocalOnly ? !edgeless : edgeless) {
    return Status::InvalidArgument("shard task kind inconsistent with plan");
  }
  if (task.kind == ShardTask::Kind::kVerify) {
    VertexId prev = kInvalidVertex;
    for (VertexId c : task.candidates) {
      // Sorted unique (prev starts as the max sentinel; a first element
      // equal to it would be out of range anyway), in range, and owned
      // here — anything else is a protocol violation.
      if (c >= gc_.NumVertices() || spec.owner[c] != spec.shard_id ||
          (prev != kInvalidVertex && c <= prev)) {
        return Status::InvalidArgument("bad shard task candidate list");
      }
      prev = c;
    }
  }
  timer_.Restart();
  CSCE_RETURN_IF_ERROR(SeedPrefix(task.mapping));
  switch (task.kind) {
    case ShardTask::Kind::kForward: {
      bool pivot = false;
      for (const ResolvedEdge& e : edges_[depth]) {
        if (spec.owner[mapping_by_pos_[e.pos]] == spec.shard_id) {
          pivot = true;
          break;
        }
      }
      if (!pivot) {
        // Re-forwarding would bounce the task between shards forever;
        // a forward must target the owner of a parent mapping.
        ClearPrefix(task.mapping);
        return Status::InvalidArgument("forward task target owns no parent");
      }
      EnumerateSharded(depth);
      break;
    }
    case ShardTask::Kind::kLocalOnly:
      EnumerateOwned(depth);
      break;
    case ShardTask::Kind::kVerify: {
      std::span<const VertexId> local = Candidates(depth);
      setops::VertexScratch& own = owned_scratch_[depth];
      own.EnsureCapacity(
          std::min(local.size(), task.candidates.size()) + setops::kOutPad);
      own.set_size(setops::Intersect(local, task.candidates, own.data()));
      EnumerateOver(depth, own.span());
      break;
    }
  }
  ClearPrefix(task.mapping);
  stats_.seconds += timer_.Seconds();
  return Status::OK();
}

void Executor::FinishTasks(ExecStats* stats) {
  *stats = stats_;
  const EngineMetrics& m = EngineMetrics::Get();
  m.runs.Increment();
  m.embeddings.Add(stats_.embeddings);
  m.search_nodes.Add(stats_.search_nodes);
  m.sce_recomputes.Add(stats_.candidate_sets_computed);
  m.sce_reuses.Add(stats_.candidate_sets_reused);
  m.morsels_claimed.Add(stats_.morsels_claimed);
  m.intersect_elements.Add(stats_.intersect_elements);
  m.prune_candidates_removed.Add(stats_.prune_candidates_removed);
  m.prune_extensions_skipped.Add(stats_.prune_extensions_skipped);
  m.prune_aux_hits.Add(stats_.prune_aux_hits);
  m.candidate_set_size.Merge(stats_.candidate_set_size);
  m.prune_shrink_ratio.Merge(stats_.prune_shrink_ratio);
  m.run_seconds.Record(stats_.seconds);
  stats_ = ExecStats{};
}

Status Executor::ComputeRootCandidates(const ExecOptions& options,
                                       std::vector<VertexId>* out,
                                       ExecStats* stats) {
  CSCE_RETURN_IF_ERROR(Prepare(options));
  out->clear();
  if (!plan_.positions.empty()) {
    // Computed into the root's (still invalid) cache buffer, then
    // copied out: this is setup work, not the enumeration hot path.
    setops::VertexScratch& root = caches_[cache_slot_[0]].candidates;
    ComputeCandidates(0, &root);
    out->assign(root.data(), root.data() + root.size());
    root.clear();
  }
  if (stats != nullptr) *stats = stats_;
  return Status::OK();
}

}  // namespace csce
