#ifndef CSCE_ENGINE_EMBEDDING_VERIFIER_H_
#define CSCE_ENGINE_EMBEDDING_VERIFIER_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/cluster_id.h"
#include "ccsr/csr.h"
#include "graph/graph.h"
#include "graph/variant.h"
#include "util/status.h"

namespace csce {

/// Ground-truth re-verification of emitted embeddings — the backend of
/// MatchOptions::self_check. Every emitted mapping is re-checked
/// against the data graph from first principles: vertex labels, the
/// presence of every pattern edge's data arc, injectivity (edge- and
/// vertex-induced), and the absence of extra arcs between non-adjacent
/// pattern vertices (vertex-induced).
///
/// The verifier decompresses every cluster it needs privately from the
/// compressed CCSR, independently of any shared ClusterCache, so a
/// corrupted reused view is caught rather than echoed.
///
/// Verify() is thread-safe (immutable state plus one atomic counter):
/// the morsel-parallel runtime invokes the embedding callback
/// concurrently from its workers.
class EmbeddingVerifier {
 public:
  /// Decompresses the clusters of all pattern edges and, for
  /// vertex-induced matching, the "(x,y)*-clusters" of all non-adjacent
  /// pattern vertex pairs. `data` and `pattern` must outlive the
  /// verifier. Requires pattern.directed() == data.directed().
  EmbeddingVerifier(const Ccsr& data, const Graph& pattern,
                    MatchVariant variant);

  EmbeddingVerifier(const EmbeddingVerifier&) = delete;
  EmbeddingVerifier& operator=(const EmbeddingVerifier&) = delete;

  /// Checks one embedding (indexed by pattern vertex). Returns OK and
  /// bumps verified() on success; Corruption describing the first
  /// violated constraint otherwise.
  Status Verify(std::span<const VertexId> mapping) const;

  /// Number of embeddings that passed verification so far.
  uint64_t verified() const {
    return verified_.load(std::memory_order_relaxed);
  }

 private:
  // One privately decompressed star cluster, for anti-edge checks.
  struct StarView {
    Label src_label;
    Label dst_label;
    bool directed;
    CsrIndex out;
  };
  // One ordered (directed) or unordered (undirected) pattern vertex
  // pair that must have no data arc u -> w, plus the star clusters the
  // forbidden arc could live in.
  struct AntiPair {
    VertexId u;
    VertexId w;
    const std::vector<StarView>* stars;
  };
  // One pattern edge with its privately decompressed cluster
  // (nullptr: the cluster is absent from the data, so no embedding can
  // contain this edge).
  struct PatternEdge {
    Edge edge;
    const CsrIndex* view;
  };

  const Ccsr& data_;
  const Graph& pattern_;
  const MatchVariant variant_;
  std::unordered_map<ClusterId, CsrIndex, ClusterIdHash> edge_views_;
  std::unordered_map<uint64_t, std::vector<StarView>> star_views_;
  std::vector<PatternEdge> edges_;
  std::vector<AntiPair> anti_pairs_;
  mutable std::atomic<uint64_t> verified_{0};
};

}  // namespace csce

#endif  // CSCE_ENGINE_EMBEDDING_VERIFIER_H_
