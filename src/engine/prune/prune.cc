#include "engine/prune/prune.h"

namespace csce {

PruneOptions AllPruneOptions() {
  PruneOptions o;
  o.aux = o.ree = o.lpi = true;
  return o;
}

Status ParsePruneList(std::string_view spec, PruneOptions* out) {
  PruneOptions parsed;
  size_t start = 0;
  bool saw_token = false;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) {
      if (spec.empty()) break;  // "" == none
      return Status::InvalidArgument("empty prune pass name in list");
    }
    saw_token = true;
    if (token == "aux") {
      parsed.aux = true;
    } else if (token == "ree") {
      parsed.ree = true;
    } else if (token == "lpi") {
      parsed.lpi = true;
    } else if (token == "all") {
      parsed = AllPruneOptions();
    } else if (token == "none") {
      parsed = PruneOptions{};
    } else {
      return Status::InvalidArgument(
          "unknown prune pass \"" + std::string(token) +
          "\" (expected aux, ree, lpi, all, or none)");
    }
    if (comma == spec.size()) break;
  }
  (void)saw_token;
  *out = parsed;
  return Status::OK();
}

std::string PruneOptionsToString(const PruneOptions& options) {
  if (!options.any()) return "none";
  std::string s;
  auto add = [&s](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (options.aux) add("aux");
  if (options.ree) add("ree");
  if (options.lpi) add("lpi");
  return s;
}

}  // namespace csce
