#ifndef CSCE_ENGINE_PRUNE_PRUNE_H_
#define CSCE_ENGINE_PRUNE_PRUNE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace csce {

/// Selection of proactive pruning passes (ROADMAP item 3). All three
/// passes are semantics-preserving: with any subset enabled the engine
/// produces byte-identical sorted embeddings to pruning-off — they only
/// shrink the work done to find them.
///
///  - aux: auxiliary-graph projections (GraphMini-style). The planner
///    marks positions whose candidate intersection can be built
///    incrementally while ancestor vertices are placed; empty partial
///    projections cut whole subtrees early.
///  - ree: redundant-extension elimination (CEMR-style). Siblings whose
///    adjacency is provably interchangeable with an already-enumerated
///    zero-embedding sibling are skipped without descending.
///  - lpi: label-pair index (l2Match-style). A per-vertex neighboring-
///    label bitmask built at CCSR load (persisted as an optional v2
///    section) filters candidates that cannot serve the pattern's
///    still-unmatched neighbor labels.
struct PruneOptions {
  bool aux = false;
  bool ree = false;
  bool lpi = false;

  bool any() const { return aux || ree || lpi; }

  friend bool operator==(const PruneOptions& a, const PruneOptions& b) {
    return a.aux == b.aux && a.ree == b.ree && a.lpi == b.lpi;
  }
};

/// All passes on — the `--prune=all` spelling.
PruneOptions AllPruneOptions();

/// Parses a comma-separated pass list ("aux,ree,lpi", "all", "none", or
/// "" meaning none) into `out`. Unknown pass names are rejected with
/// InvalidArgument naming the offending token; `out` is untouched on
/// error.
Status ParsePruneList(std::string_view spec, PruneOptions* out);

/// Canonical round-trippable spelling: "none", "aux,ree,lpi", ...
std::string PruneOptionsToString(const PruneOptions& options);

}  // namespace csce

#endif  // CSCE_ENGINE_PRUNE_PRUNE_H_
