#include "engine/matcher.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "engine/embedding_verifier.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/validate.h"
#include "runtime/parallel_executor.h"
#include "util/memory.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace csce {
namespace {

struct MatchMetrics {
  obs::Counter queries;
  obs::Histogram read_seconds;
  obs::Histogram plan_seconds;
  obs::Histogram enumerate_seconds;

  static const MatchMetrics& Get() {
    static const MatchMetrics m = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return MatchMetrics{r.counter("match.queries"),
                          r.histogram("match.read_seconds"),
                          r.histogram("match.plan_seconds"),
                          r.histogram("match.enumerate_seconds")};
    }();
    return m;
  }
};

// Ends the query's paging-advice window on every exit path (under a
// memory cap this drops the advised clusters behind the frontier).
struct AdviseDoneGuard {
  const Ccsr& data;
  ~AdviseDoneGuard() { data.AdviseQueryDone(); }
};

Status MatchImpl(const Ccsr& data, ClusterCache* cache, const Graph& pattern,
                 const MatchOptions& options,
                 const EmbeddingCallback* callback, MatchResult* result) {
  *result = MatchResult{};
  obs::Span match_span("match.query");
  WallTimer total;

  // Stage 2 (orange in Fig. 2) runs first: plan optimization touches
  // only the cluster directory and statistics — never payload bytes —
  // so for an mmap'd index the finished plan doubles as the prefetch
  // schedule for stage 1's reads.
  WallTimer stage;
  Planner planner(&data);
  Plan plan;
  {
    obs::Span span("match.plan");
    CSCE_RETURN_IF_ERROR(
        planner.MakePlan(pattern, options.variant, options.plan, &plan));
  }
  result->plan_seconds = stage.Seconds();
  result->sce = plan.sce;

  AdviseDoneGuard advise_guard{data};
  if (data.mapped()) {
    data.AdviseQueryClusters(PlanClusterSchedule(data, plan));
  }

  // Stage 1 (blue): read the useful clusters G_C^*.
  stage.Restart();
  QueryClusters qc;
  {
    obs::Span span("match.read");
    if (cache != nullptr) {
      CSCE_RETURN_IF_ERROR(
          ReadClustersCached(*cache, pattern, options.variant, &qc));
    } else {
      CSCE_RETURN_IF_ERROR(ReadClusters(data, pattern, options.variant, &qc));
    }
  }
  result->read_seconds = stage.Seconds();
  result->clusters_read = qc.NumViews();
  result->decompressed_bytes = qc.DecompressedBytes();

  // Stage 3 (green): pipelined WCOJ execution, morsel-parallel when
  // the options ask for more than one thread.
  stage.Restart();
  ExecOptions exec;
  exec.max_embeddings = options.max_embeddings;
  exec.time_limit_seconds = options.time_limit_seconds;
  exec.restrictions = options.restrictions;
  exec.stop = options.stop;
  // The executor only acts on directives the plan compiled, so the
  // plan's pass set (== options.plan.prune) is authoritative.
  exec.prune = plan.prune;
  if (callback != nullptr) exec.callback = *callback;

  // Self-check: validate the plan, arm the SCE oracle, and re-verify
  // every emitted embedding from first principles. The verifying
  // wrapper must be thread-safe — the parallel runtime invokes the
  // callback concurrently from its workers.
  std::unique_ptr<EmbeddingVerifier> verifier;
  Mutex self_check_mu;
  Status self_check_error;
  if (options.self_check) {
    CSCE_RETURN_IF_ERROR(ValidatePlan(&data, pattern, plan));
    exec.verify_sce = true;
    verifier = std::make_unique<EmbeddingVerifier>(data, pattern,
                                                   options.variant);
    exec.callback = [&, user = exec.callback](
                        std::span<const VertexId> mapping) -> bool {
      Status st = verifier->Verify(mapping);
      if (!st.ok()) {
        MutexLock lock(self_check_mu);
        if (self_check_error.ok()) self_check_error = std::move(st);
        return false;
      }
      return user ? user(mapping) : true;
    };
  }
  ExecStats stats;
  {
    obs::Span span("match.enumerate");
    if (options.num_threads != 1) {
      ParallelExecutor executor(data, qc, plan);
      ParallelOptions popts;
      popts.num_threads = options.num_threads;
      popts.morsel_size = options.morsel_size;
      CSCE_RETURN_IF_ERROR(executor.Run(exec, popts, &stats));
    } else {
      Executor executor(data, qc, plan);
      CSCE_RETURN_IF_ERROR(executor.Run(exec, &stats));
    }
  }
  result->enumerate_seconds = stage.Seconds();

  if (options.self_check) {
    if (!self_check_error.ok()) return self_check_error;
    result->embeddings_verified = verifier->verified();
  }

  result->embeddings = stats.embeddings;
  result->timed_out = stats.timed_out;
  result->limit_reached = stats.limit_reached;
  result->cancelled = stats.cancelled;
  result->search_nodes = stats.search_nodes;
  result->candidate_sets_computed = stats.candidate_sets_computed;
  result->candidate_sets_reused = stats.candidate_sets_reused;
  result->morsels_claimed = stats.morsels_claimed;
  result->worker_idle_seconds = stats.worker_idle_seconds;
  result->intersect_elements = stats.intersect_elements;
  result->prune_candidates_removed = stats.prune_candidates_removed;
  result->prune_extensions_skipped = stats.prune_extensions_skipped;
  result->prune_aux_hits = stats.prune_aux_hits;
  result->total_seconds = total.Seconds();
  result->peak_rss_bytes = PeakRssBytes();

  const MatchMetrics& m = MatchMetrics::Get();
  m.queries.Increment();
  m.read_seconds.Record(result->read_seconds);
  m.plan_seconds.Record(result->plan_seconds);
  m.enumerate_seconds.Record(result->enumerate_seconds);
  return Status::OK();
}

}  // namespace

std::vector<ClusterId> PlanClusterSchedule(const Ccsr& data,
                                           const Plan& plan) {
  std::vector<ClusterId> ids;
  auto add = [&ids](const ClusterId& id) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      ids.push_back(id);
    }
  };
  for (const PlanPosition& p : plan.positions) {
    if (p.seed_valid) add(p.seed_cluster);
    for (const EdgeConstraint& e : p.edges) add(e.cluster);
    for (const NegConstraint& n : p.negations) {
      for (const CompressedCluster* c :
           data.StarClusters(p.label, n.other_label)) {
        add(c->id);
      }
    }
  }
  return ids;
}

Status CsceMatcher::Match(const Graph& pattern, const MatchOptions& options,
                          MatchResult* result) const {
  return MatchImpl(*data_, cache_, pattern, options, nullptr, result);
}

Status CsceMatcher::MatchWithCallback(const Graph& pattern,
                                      const MatchOptions& options,
                                      const EmbeddingCallback& callback,
                                      MatchResult* result) const {
  return MatchImpl(*data_, cache_, pattern, options, &callback, result);
}

Status CsceMatcher::ExplainPlan(const Graph& pattern,
                                const MatchOptions& options,
                                Plan* plan) const {
  Planner planner(data_);
  return planner.MakePlan(pattern, options.variant, options.plan, plan);
}

}  // namespace csce
