#include "engine/embedding_verifier.h"

#include <string>
#include <utility>

#include "util/logging.h"

namespace csce {
namespace {

uint64_t StarKey(Label a, Label b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

std::string MapStr(VertexId u, VertexId v) {
  return std::to_string(u) + " -> " + std::to_string(v);
}

}  // namespace

EmbeddingVerifier::EmbeddingVerifier(const Ccsr& data, const Graph& pattern,
                                     MatchVariant variant)
    : data_(data), pattern_(pattern), variant_(variant) {
  CSCE_CHECK(pattern.directed() == data.directed())
      << "pattern and data directedness differ";

  // Every pattern edge's cluster, decompressed privately (copies the
  // column arrays on purpose — no shared state with query caches).
  pattern_.ForEachEdge([&](const Edge& e) {
    ClusterId id = ClusterId::ForPatternEdge(pattern_, e);
    auto it = edge_views_.find(id);
    if (it == edge_views_.end()) {
      const CompressedCluster* c = data_.Find(id);
      if (c != nullptr) {
        it = edge_views_
                 .emplace(id, CsrIndex::FromCompressed(c->out_rows,
                                                       c->out_cols.span(),
                                                       /*borrow=*/false))
                 .first;
      } else {
        it = edge_views_.emplace(id, CsrIndex{}).first;
      }
    }
    const CsrIndex* view =
        it->second.NumArcs() > 0 ? &it->second : nullptr;
    edges_.push_back(PatternEdge{e, view});
  });

  if (variant_ != MatchVariant::kVertexInduced) return;

  // Star clusters for every label pair of a non-adjacent pattern pair.
  const uint32_t n = pattern_.NumVertices();
  auto load_stars = [&](Label a, Label b) {
    uint64_t key = StarKey(a, b);
    if (star_views_.count(key) > 0) return;
    std::vector<StarView>& views = star_views_[key];
    for (const CompressedCluster* c : data_.StarClusters(a, b)) {
      if (c->num_edges == 0) continue;
      views.push_back(StarView{
          c->id.src_label, c->id.dst_label, c->id.directed,
          CsrIndex::FromCompressed(c->out_rows, c->out_cols.span(),
                                   /*borrow=*/false)});
    }
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w = u + 1; w < n; ++w) {
      bool missing = pattern_.directed()
                         ? (!pattern_.HasEdge(u, w) || !pattern_.HasEdge(w, u))
                         : !pattern_.HasEdge(u, w);
      if (missing) load_stars(pattern_.VertexLabel(u), pattern_.VertexLabel(w));
    }
  }
  // Second pass: the map is stable now, pointers into it are safe.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w = u + 1; w < n; ++w) {
      if (pattern_.directed()) {
        if (!pattern_.HasEdge(u, w)) {
          anti_pairs_.push_back(AntiPair{
              u, w,
              &star_views_.at(
                  StarKey(pattern_.VertexLabel(u), pattern_.VertexLabel(w)))});
        }
        if (!pattern_.HasEdge(w, u)) {
          anti_pairs_.push_back(AntiPair{
              w, u,
              &star_views_.at(
                  StarKey(pattern_.VertexLabel(u), pattern_.VertexLabel(w)))});
        }
      } else if (!pattern_.HasEdge(u, w)) {
        anti_pairs_.push_back(AntiPair{
            u, w,
            &star_views_.at(
                StarKey(pattern_.VertexLabel(u), pattern_.VertexLabel(w)))});
      }
    }
  }
}

Status EmbeddingVerifier::Verify(std::span<const VertexId> mapping) const {
  const uint32_t n = pattern_.NumVertices();
  if (mapping.size() != n) {
    return Status::Corruption(
        "embedding: mapping has " + std::to_string(mapping.size()) +
        " entries for a pattern of " + std::to_string(n) + " vertices");
  }

  // Range and label checks.
  for (VertexId u = 0; u < n; ++u) {
    VertexId v = mapping[u];
    if (v >= data_.NumVertices()) {
      return Status::Corruption("embedding: mapping " + MapStr(u, v) +
                                " is out of the data vertex range");
    }
    if (data_.VertexLabel(v) != pattern_.VertexLabel(u)) {
      return Status::Corruption(
          "embedding: mapping " + MapStr(u, v) + " has data label " +
          std::to_string(data_.VertexLabel(v)) + ", pattern requires " +
          std::to_string(pattern_.VertexLabel(u)));
    }
  }

  // Injectivity (edge- and vertex-induced).
  if (variant_ != MatchVariant::kHomomorphic) {
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b = a + 1; b < n; ++b) {
        if (mapping[a] == mapping[b]) {
          return Status::Corruption(
              "embedding: not injective — pattern vertices " +
              std::to_string(a) + " and " + std::to_string(b) +
              " both map to data vertex " + std::to_string(mapping[a]));
        }
      }
    }
  }

  // Every pattern edge must exist as a data arc in its cluster.
  for (const PatternEdge& pe : edges_) {
    VertexId fs = mapping[pe.edge.src];
    VertexId fd = mapping[pe.edge.dst];
    if (pe.view == nullptr || !pe.view->HasArc(fs, fd)) {
      return Status::Corruption(
          "embedding: pattern edge (" + std::to_string(pe.edge.src) + " -> " +
          std::to_string(pe.edge.dst) + ", label " +
          std::to_string(pe.edge.elabel) + ") has no data arc " +
          std::to_string(fs) + " -> " + std::to_string(fd));
    }
  }

  // Vertex-induced: non-adjacent pattern pairs must have no data arc in
  // the forbidden direction, under any edge label.
  for (const AntiPair& ap : anti_pairs_) {
    VertexId fu = mapping[ap.u];
    VertexId fw = mapping[ap.w];
    Label lu = pattern_.VertexLabel(ap.u);
    Label lw = pattern_.VertexLabel(ap.w);
    for (const StarView& sv : *ap.stars) {
      bool arc;
      if (!sv.directed) {
        arc = sv.out.HasArc(fu, fw);
      } else if (sv.src_label == lu && sv.dst_label == lw) {
        arc = sv.out.HasArc(fu, fw);
      } else {
        continue;
      }
      if (arc) {
        return Status::Corruption(
            "embedding: induced violation — pattern vertices " +
            std::to_string(ap.u) + " and " + std::to_string(ap.w) +
            " are non-adjacent but data has an arc " + std::to_string(fu) +
            " -> " + std::to_string(fw) + " in cluster " +
            ClusterId{sv.src_label, sv.dst_label, 0, sv.directed}.ToString());
      }
    }
  }

  verified_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace csce
