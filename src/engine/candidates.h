#ifndef CSCE_ENGINE_CANDIDATES_H_
#define CSCE_ENGINE_CANDIDATES_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace csce {

/// out = a ∩ b. Inputs are sorted unique; output likewise. Switches to
/// galloping (doubling binary search) when sizes are lopsided.
void IntersectSorted(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out);

/// acc = acc ∩ b, in place.
void IntersectInPlace(std::vector<VertexId>* acc, std::span<const VertexId> b);

/// acc = acc \ b, in place.
void DifferenceInPlace(std::vector<VertexId>* acc,
                       std::span<const VertexId> b);

}  // namespace csce

#endif  // CSCE_ENGINE_CANDIDATES_H_
