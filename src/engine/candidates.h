#ifndef CSCE_ENGINE_CANDIDATES_H_
#define CSCE_ENGINE_CANDIDATES_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace csce {

/// Convenience std::vector front-ends over the dispatched kernels in
/// engine/setops/ (SIMD when the CPU has it, scalar otherwise). These
/// allocate on resize like any vector code and exist for callers off
/// the enumeration hot path — baselines, benches, tests. The executor
/// itself calls setops directly on preallocated VertexScratch buffers.

/// out = a ∩ b. Inputs are sorted unique; output likewise.
void IntersectSorted(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out);

/// acc = acc ∩ b, in place.
void IntersectInPlace(std::vector<VertexId>* acc, std::span<const VertexId> b);

/// acc = acc \ b, in place.
void DifferenceInPlace(std::vector<VertexId>* acc,
                       std::span<const VertexId> b);

}  // namespace csce

#endif  // CSCE_ENGINE_CANDIDATES_H_
