#ifndef CSCE_GEN_DATASETS_H_
#define CSCE_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace csce {

/// Deterministic synthetic analogues of the paper's Table IV datasets,
/// scaled down ~10-40x so the full benchmark suite runs on one core in
/// minutes. Each analogue preserves the original's *shape*: directed-
/// ness, vertex label count, average degree, and degree skew. See
/// DESIGN.md ("Substitutions") for the rationale.
namespace datasets {

/// DIP protein-protein interactions: undirected, unlabeled, skewed,
/// avg degree ~8.9.
Graph Dip();

/// Yeast PPI: undirected, 71 labels, avg degree ~8.1.
Graph Yeast();

/// Human PPI: undirected, 44 labels, dense (avg degree ~37 in the
/// paper; ~20 here to keep single-core runtimes sane).
Graph Human();

/// HPRD PPI: undirected, 304 labels, avg degree ~7.5.
Graph Hprd();

/// RoadCA road network: undirected, unlabeled, near-planar grid,
/// avg degree ~2.8.
Graph RoadCa();

/// Patent citations: undirected per the paper's table, `labels`
/// vertex labels (the paper uses 20, and 200/2000 variants for the
/// scalability experiments), avg degree ~8.8.
Graph Patent(uint32_t labels = 20);

/// Subcategory: directed, 36 labels, avg degree ~10.
Graph Subcategory();

/// LiveJournal: directed, unlabeled, heavy-tailed, avg degree ~17.
Graph LiveJournal();

/// Orkut: undirected, 50 labels, dense and heavy-tailed.
Graph Orkut();

/// EMAIL-EU communications with planted departments for the case
/// study; `departments_out` receives the ground truth.
Graph EmailEu(std::vector<uint32_t>* departments_out);

/// All Table IV analogues with their paper names, in table order.
struct NamedGraph {
  std::string name;
  Graph graph;
};
std::vector<NamedGraph> AllTable4();

}  // namespace datasets
}  // namespace csce

#endif  // CSCE_GEN_DATASETS_H_
