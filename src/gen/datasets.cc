#include "gen/datasets.h"

#include "gen/random_graph.h"

namespace csce {
namespace datasets {
namespace {

// Seeds are arbitrary but fixed: every run of every binary sees the
// exact same graphs.
constexpr uint64_t kSeedBase = 0xC5CE0000;

LabelConfig Labels(uint32_t vertex_labels, double skew = 0.5) {
  LabelConfig cfg;
  cfg.vertex_labels = vertex_labels;
  cfg.label_skew = skew;
  return cfg;
}

}  // namespace

Graph Dip() {
  // PPI background plus planted near-clique "protein complexes": the
  // dense modules are what make MIPS-complex-shaped patterns selective
  // in the otherwise unlabeled graph.
  Graph background = ChungLu(1200, 4300, /*gamma=*/3.0, /*directed=*/false,
                             Labels(1), kSeedBase + 1);
  return PlantPockets(background, /*num_pockets=*/45, /*pocket_size=*/10,
                      /*p_in=*/0.62, kSeedBase + 11);
}

Graph Yeast() {
  return ChungLu(1000, 4050, 2.6, false, Labels(71, 0.8), kSeedBase + 2);
}

Graph Human() {
  return ChungLu(1400, 14000, 2.8, false, Labels(44, 0.6), kSeedBase + 3);
}

Graph Hprd() {
  return ChungLu(2300, 8600, 2.6, false, Labels(304, 0.8), kSeedBase + 4);
}

Graph RoadCa() {
  return GridRoad(160, 160, /*keep_prob=*/0.72, kSeedBase + 5);
}

Graph Patent(uint32_t labels) {
  return ChungLu(40000, 176000, 2.7, false, Labels(labels, 0.5),
                 kSeedBase + 6 + labels);
}

Graph Subcategory() {
  return ChungLu(30000, 153000, 2.6, /*directed=*/true, Labels(36, 0.6),
                 kSeedBase + 7);
}

Graph LiveJournal() {
  return ChungLu(40000, 346000, 2.2, true, Labels(1), kSeedBase + 8);
}

Graph Orkut() {
  return ChungLu(15000, 286000, 2.3, false, Labels(50, 0.6), kSeedBase + 9);
}

Graph EmailEu(std::vector<uint32_t>* departments_out) {
  // Tuned so that plain edge-based propagation is middling (noisy
  // inter-department mail) while 8-cliques stay intra-department, and
  // the 8-clique count remains enumerable in seconds.
  return PlantedPartition(600, /*communities=*/20, /*p_in=*/0.72,
                          /*p_out=*/0.025, kSeedBase + 10, departments_out);
}

std::vector<NamedGraph> AllTable4() {
  std::vector<NamedGraph> all;
  all.push_back({"DIP", Dip()});
  all.push_back({"Yeast", Yeast()});
  all.push_back({"Human", Human()});
  all.push_back({"HPRD", Hprd()});
  all.push_back({"RoadCA", RoadCa()});
  all.push_back({"Orkut", Orkut()});
  all.push_back({"Patent", Patent()});
  all.push_back({"Subcategory", Subcategory()});
  all.push_back({"LiveJournal", LiveJournal()});
  return all;
}

}  // namespace datasets
}  // namespace csce
