#ifndef CSCE_GEN_PATTERN_GEN_H_
#define CSCE_GEN_PATTERN_GEN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace csce {

/// Pattern density classes following RapidMatch/VEQ: a pattern is dense
/// if its average degree exceeds 2 and sparse otherwise.
enum class PatternDensity {
  kDense,   // the full induced subgraph of the sampled vertices
  kSparse,  // a spanning tree plus extra edges up to |V| edges total
};

/// Samples a connected pattern of `size` vertices from `g` by a random
/// neighbor-growth walk (the convention of RM/VEQ/GuP for generating
/// query workloads). Dense patterns take the whole induced subgraph, so
/// they are guaranteed at least one vertex-induced (hence also
/// edge-induced and homomorphic) embedding; sparse patterns keep a
/// spanning tree plus random extra edges, guaranteed at least one
/// edge-induced embedding.
///
/// Fails with NotFound if `g` has no connected region of `size`
/// vertices reachable from the sampled seeds.
Status SamplePattern(const Graph& g, uint32_t size, PatternDensity density,
                     Rng& rng, Graph* out);

/// `count` patterns of the same configuration with distinct walks.
Status SamplePatterns(const Graph& g, uint32_t size, PatternDensity density,
                      uint32_t count, uint64_t seed, std::vector<Graph>* out);

/// Samples a complex-like pattern: a connected induced subgraph grown
/// greedily toward dense regions, accepted only when its average
/// degree reaches `min_avg_degree`. This is the shape of the paper's
/// MIPS protein-complex patterns — dense enough to be selective in an
/// unlabeled graph. NotFound when the graph has no such region.
Status SampleDensePattern(const Graph& g, uint32_t size,
                          double min_avg_degree, Rng& rng, Graph* out);

Status SampleDensePatterns(const Graph& g, uint32_t size,
                           double min_avg_degree, uint32_t count,
                           uint64_t seed, std::vector<Graph>* out);

}  // namespace csce

#endif  // CSCE_GEN_PATTERN_GEN_H_
