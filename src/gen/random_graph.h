#ifndef CSCE_GEN_RANDOM_GRAPH_H_
#define CSCE_GEN_RANDOM_GRAPH_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace csce {

/// Shared knobs for the random graph generators. All generators are
/// fully deterministic given the seed.
struct LabelConfig {
  uint32_t vertex_labels = 1;  // 1 = unlabeled (all label 0)
  uint32_t edge_labels = 1;
  /// Zipf skew for label popularity; 0 = uniform.
  double label_skew = 0.0;
};

/// G(n, m)-style uniform random graph with approximately `num_edges`
/// distinct edges (self-loops rejected, duplicates collapse).
Graph ErdosRenyi(uint32_t num_vertices, uint64_t num_edges, bool directed,
                 const LabelConfig& labels, uint64_t seed);

/// Chung-Lu random graph with a power-law expected-degree sequence
/// (exponent `gamma`, typically 2.1-2.8): the heavy-tailed shape of
/// social and citation networks.
Graph ChungLu(uint32_t num_vertices, uint64_t num_edges, double gamma,
              bool directed, const LabelConfig& labels, uint64_t seed);

/// Road-network analogue: a rows x cols grid where each lattice edge is
/// kept with probability `keep_prob` and a few diagonal shortcuts are
/// added; average degree lands near RoadCA's ~2.8. Undirected,
/// unlabeled.
Graph GridRoad(uint32_t rows, uint32_t cols, double keep_prob, uint64_t seed);

/// Planted-partition ("stochastic block") graph for the clustering case
/// study: `communities` equal-sized groups, intra-group edge
/// probability `p_in`, inter-group `p_out`. `assignment_out` (optional)
/// receives the ground-truth community per vertex.
Graph PlantedPartition(uint32_t num_vertices, uint32_t communities,
                       double p_in, double p_out, uint64_t seed,
                       std::vector<uint32_t>* assignment_out);

/// Overlays `num_pockets` dense vertex groups on top of a base graph:
/// each pocket picks `pocket_size` random vertices and connects each
/// pair with probability `p_in`. Models the dense functional modules
/// (protein complexes) of PPI networks, which are what make
/// complex-shaped patterns selective.
Graph PlantPockets(const Graph& base, uint32_t num_pockets,
                   uint32_t pocket_size, double p_in, uint64_t seed);

/// Draws a label in [0, count) with Zipf skew (0 = uniform).
Label DrawLabel(Rng& rng, uint32_t count, double skew);

}  // namespace csce

#endif  // CSCE_GEN_RANDOM_GRAPH_H_
