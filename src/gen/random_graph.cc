#include "gen/random_graph.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace csce {
namespace {

void AssignVertexLabels(GraphBuilder* builder, uint32_t n,
                        const LabelConfig& labels, Rng& rng) {
  for (uint32_t i = 0; i < n; ++i) {
    builder->AddVertex(DrawLabel(rng, labels.vertex_labels, labels.label_skew));
  }
}

Label DrawEdgeLabel(Rng& rng, const LabelConfig& labels) {
  return DrawLabel(rng, labels.edge_labels, labels.label_skew);
}

Graph FinishBuild(GraphBuilder* builder) {
  Graph g;
  Status st = builder->Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

}  // namespace

Label DrawLabel(Rng& rng, uint32_t count, double skew) {
  if (count <= 1) return kNoLabel;
  if (skew <= 0.0) return static_cast<Label>(rng.Uniform(count));
  // Inverse-CDF Zipf approximation: P(i) ~ (i+1)^-skew.
  double u = rng.NextDouble();
  // Normalizing constant via the continuous approximation.
  double max_r = std::pow(static_cast<double>(count), 1.0 - skew);
  double r = std::pow(u * (max_r - 1.0) + 1.0, 1.0 / (1.0 - skew));
  // r lands in [1, count]; shift to 0-based labels.
  uint32_t label = static_cast<uint32_t>(r) - 1;
  if (label >= count) label = count - 1;
  return label;
}

Graph ErdosRenyi(uint32_t num_vertices, uint64_t num_edges, bool directed,
                 const LabelConfig& labels, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(directed);
  AssignVertexLabels(&builder, num_vertices, labels, rng);
  if (num_vertices >= 2) {
    for (uint64_t i = 0; i < num_edges; ++i) {
      VertexId a = static_cast<VertexId>(rng.Uniform(num_vertices));
      VertexId b = static_cast<VertexId>(rng.Uniform(num_vertices));
      if (a == b) continue;  // builder rejects self-loops; just skip
      builder.AddEdge(a, b, DrawEdgeLabel(rng, labels));
    }
  }
  return FinishBuild(&builder);
}

Graph ChungLu(uint32_t num_vertices, uint64_t num_edges, double gamma,
              bool directed, const LabelConfig& labels, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(directed);
  AssignVertexLabels(&builder, num_vertices, labels, rng);
  if (num_vertices < 2) return FinishBuild(&builder);

  // Cumulative weights w_i = (i+1)^(-1/(gamma-1)) (descending), so
  // low-index vertices become hubs.
  std::vector<double> cdf(num_vertices);
  double alpha = 1.0 / (gamma - 1.0);
  double total = 0.0;
  for (uint32_t i = 0; i < num_vertices; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf[i] = total;
  }
  auto draw = [&]() -> VertexId {
    double u = rng.NextDouble() * total;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<VertexId>(it - cdf.begin());
  };
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId a = draw();
    VertexId b = draw();
    if (a == b) continue;
    builder.AddEdge(a, b, DrawEdgeLabel(rng, labels));
  }
  return FinishBuild(&builder);
}

Graph GridRoad(uint32_t rows, uint32_t cols, double keep_prob,
               uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(/*directed=*/false);
  builder.AddVertices(rows * cols, kNoLabel);
  auto id = [cols](uint32_t r, uint32_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.Bernoulli(keep_prob)) {
        builder.AddEdge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows && rng.Bernoulli(keep_prob)) {
        builder.AddEdge(id(r, c), id(r + 1, c));
      }
      // Occasional diagonal shortcut (on/off-ramps, bridges).
      if (r + 1 < rows && c + 1 < cols && rng.Bernoulli(0.05)) {
        builder.AddEdge(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  return FinishBuild(&builder);
}

Graph PlantPockets(const Graph& base, uint32_t num_pockets,
                   uint32_t pocket_size, double p_in, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(base.directed());
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    builder.AddVertex(base.VertexLabel(v));
  }
  base.ForEachEdge(
      [&builder](const Edge& e) { builder.AddEdge(e.src, e.dst, e.elabel); });
  if (base.NumVertices() >= pocket_size) {
    std::vector<VertexId> members(pocket_size);
    for (uint32_t p = 0; p < num_pockets; ++p) {
      for (VertexId& m : members) {
        m = static_cast<VertexId>(rng.Uniform(base.NumVertices()));
      }
      for (uint32_t a = 0; a < pocket_size; ++a) {
        for (uint32_t b = a + 1; b < pocket_size; ++b) {
          if (members[a] != members[b] && rng.Bernoulli(p_in)) {
            builder.AddEdge(members[a], members[b]);
          }
        }
      }
    }
  }
  return FinishBuild(&builder);
}

Graph PlantedPartition(uint32_t num_vertices, uint32_t communities,
                       double p_in, double p_out, uint64_t seed,
                       std::vector<uint32_t>* assignment_out) {
  CSCE_CHECK(communities >= 1);
  Rng rng(seed);
  GraphBuilder builder(/*directed=*/false);
  std::vector<uint32_t> assignment(num_vertices);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    assignment[v] = v % communities;
    builder.AddVertex(kNoLabel);
  }
  for (uint32_t a = 0; a < num_vertices; ++a) {
    for (uint32_t b = a + 1; b < num_vertices; ++b) {
      double p = assignment[a] == assignment[b] ? p_in : p_out;
      if (rng.Bernoulli(p)) builder.AddEdge(a, b);
    }
  }
  if (assignment_out != nullptr) *assignment_out = std::move(assignment);
  return FinishBuild(&builder);
}

}  // namespace csce
