#include "gen/pattern_gen.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "util/logging.h"

namespace csce {
namespace {

// Grows a connected vertex set of the requested size by repeatedly
// picking a random collected vertex and a random (direction-blind)
// neighbor. Returns an empty vector when the region saturates early.
std::vector<VertexId> GrowConnectedSet(const Graph& g, uint32_t size,
                                       Rng& rng) {
  if (g.NumVertices() == 0 || size == 0) return {};
  std::vector<VertexId> collected;
  std::unordered_set<VertexId> in_set;
  VertexId start = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
  collected.push_back(start);
  in_set.insert(start);
  uint32_t stale = 0;
  while (collected.size() < size && stale < 64 * size) {
    VertexId from = collected[rng.Uniform(collected.size())];
    auto out = g.OutNeighbors(from);
    auto in = g.InNeighbors(from);
    size_t total = out.size() + (g.directed() ? in.size() : 0);
    if (total == 0) {
      ++stale;
      continue;
    }
    size_t pick = rng.Uniform(total);
    VertexId next = pick < out.size() ? out[pick].v
                                      : in[pick - out.size()].v;
    if (in_set.insert(next).second) {
      collected.push_back(next);
      stale = 0;
    } else {
      ++stale;
    }
  }
  if (collected.size() < size) return {};
  return collected;
}

// Sparsifies an induced pattern: keep a (direction-blind) spanning tree
// and random extra edges until the edge count reaches |V| (avg degree
// 2, RM's sparse/dense boundary).
Graph Sparsify(const Graph& induced, Rng& rng) {
  const uint32_t n = induced.NumVertices();
  std::vector<Edge> all = induced.Edges();
  // Spanning tree via union-find over shuffled edges.
  std::vector<uint32_t> parent(n);
  for (uint32_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng.Uniform(i)]);
  }
  std::vector<Edge> kept;
  std::vector<Edge> rest;
  for (const Edge& e : all) {
    uint32_t a = find(e.src);
    uint32_t b = find(e.dst);
    if (a != b) {
      parent[a] = b;
      kept.push_back(e);
    } else {
      rest.push_back(e);
    }
  }
  for (const Edge& e : rest) {
    if (kept.size() >= n) break;  // avg degree 2 reached
    kept.push_back(e);
  }
  GraphBuilder builder(induced.directed());
  for (VertexId v = 0; v < n; ++v) builder.AddVertex(induced.VertexLabel(v));
  for (const Edge& e : kept) builder.AddEdge(e.src, e.dst, e.elabel);
  Graph out;
  Status st = builder.Build(&out);
  CSCE_CHECK(st.ok());
  return out;
}

}  // namespace

Status SamplePattern(const Graph& g, uint32_t size, PatternDensity density,
                     Rng& rng, Graph* out) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    std::vector<VertexId> vertices = GrowConnectedSet(g, size, rng);
    if (vertices.empty()) continue;
    Graph induced = InducedSubgraph(g, vertices);
    if (density == PatternDensity::kDense) {
      *out = std::move(induced);
    } else {
      *out = Sparsify(induced, rng);
    }
    return Status::OK();
  }
  return Status::NotFound("no connected region of " + std::to_string(size) +
                          " vertices found");
}

namespace {

// Greedy dense growth: repeatedly add the outside neighbor with the
// most edges into the collected set (random tie-break).
std::vector<VertexId> GrowDenseSet(const Graph& g, uint32_t size, Rng& rng) {
  if (g.NumVertices() == 0 || size == 0) return {};
  std::vector<VertexId> collected;
  std::unordered_set<VertexId> in_set;
  // Connectivity counts of frontier vertices.
  std::unordered_map<VertexId, uint32_t> frontier;
  auto add = [&](VertexId v) {
    collected.push_back(v);
    in_set.insert(v);
    frontier.erase(v);
    auto bump = [&](VertexId w) {
      if (in_set.count(w) == 0) ++frontier[w];
    };
    for (const Neighbor& n : g.OutNeighbors(v)) bump(n.v);
    if (g.directed()) {
      for (const Neighbor& n : g.InNeighbors(v)) bump(n.v);
    }
  };
  add(static_cast<VertexId>(rng.Uniform(g.NumVertices())));
  while (collected.size() < size && !frontier.empty()) {
    uint32_t best_count = 0;
    std::vector<VertexId> best;
    for (const auto& [v, count] : frontier) {
      if (count > best_count) {
        best_count = count;
        best.clear();
      }
      if (count == best_count) best.push_back(v);
    }
    add(best[rng.Uniform(best.size())]);
  }
  if (collected.size() < size) return {};
  return collected;
}

}  // namespace

Status SampleDensePattern(const Graph& g, uint32_t size,
                          double min_avg_degree, Rng& rng, Graph* out) {
  for (int attempt = 0; attempt < 128; ++attempt) {
    std::vector<VertexId> vertices = GrowDenseSet(g, size, rng);
    if (vertices.empty()) continue;
    Graph induced = InducedSubgraph(g, vertices);
    double avg_degree =
        2.0 * static_cast<double>(induced.NumEdges()) / induced.NumVertices();
    if (avg_degree < min_avg_degree) continue;
    *out = std::move(induced);
    return Status::OK();
  }
  return Status::NotFound("no region of " + std::to_string(size) +
                          " vertices with average degree >= " +
                          std::to_string(min_avg_degree));
}

Status SampleDensePatterns(const Graph& g, uint32_t size,
                           double min_avg_degree, uint32_t count,
                           uint64_t seed, std::vector<Graph>* out) {
  out->clear();
  Rng rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    Graph p;
    CSCE_RETURN_IF_ERROR(SampleDensePattern(g, size, min_avg_degree, rng, &p));
    out->push_back(std::move(p));
  }
  return Status::OK();
}

Status SamplePatterns(const Graph& g, uint32_t size, PatternDensity density,
                      uint32_t count, uint64_t seed,
                      std::vector<Graph>* out) {
  out->clear();
  Rng rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    Graph p;
    CSCE_RETURN_IF_ERROR(SamplePattern(g, size, density, rng, &p));
    out->push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace csce
