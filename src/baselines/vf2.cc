#include "baselines/vf2.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/timer.h"

namespace csce {
namespace {

constexpr uint64_t kDeadlineCheckInterval = 16384;

struct Vf2State {
  const Graph& data;
  const Graph& pattern;
  const BaselineOptions& options;

  std::vector<VertexId> order;
  // Per position: earliest backward pattern neighbor (pivot), or
  // kInvalidVertex for unanchored positions.
  std::vector<uint32_t> pivot;
  std::vector<uint32_t> pos_of;
  // Preprocessing ("index"): per data vertex, number of neighbors.
  // Per pattern vertex, the count of direction-blind neighbors.
  std::vector<uint32_t> data_degree;
  std::vector<uint32_t> pattern_degree;
  std::vector<VertexId> mapping;     // position -> data vertex
  std::vector<uint32_t> owner;       // data vertex -> position
  BaselineResult stats;
  WallTimer timer;
  uint64_t deadline_counter = 0;

  bool CheckDeadline() {
    if (options.time_limit_seconds <= 0) return true;
    if (++deadline_counter % kDeadlineCheckInterval != 0) return true;
    if (timer.Seconds() > options.time_limit_seconds) {
      stats.timed_out = true;
      return false;
    }
    return true;
  }

  // VF2 feasibility: consistency of (u, v) with all matched pairs plus
  // a one-level look-ahead on unmatched-neighbor counts.
  bool Feasible(uint32_t depth, VertexId v) {
    VertexId u = order[depth];
    if (pattern.VertexLabel(u) != data.VertexLabel(v)) return false;
    if (data_degree[v] < pattern_degree[u]) return false;

    uint32_t unmatched_pattern_nbrs = 0;
    auto scan_pattern = [&](std::span<const Neighbor> nbrs, bool outgoing) {
      for (const Neighbor& n : nbrs) {
        uint32_t p = pos_of[n.v];
        if (p >= depth) {
          ++unmatched_pattern_nbrs;
          continue;
        }
        VertexId w = mapping[p];
        bool ok = outgoing ? data.HasEdge(v, w, n.elabel)
                           : data.HasEdge(w, v, n.elabel);
        if (!ok) return false;
      }
      return true;
    };
    if (!scan_pattern(pattern.OutNeighbors(u), /*outgoing=*/true)) {
      return false;
    }
    if (pattern.directed() &&
        !scan_pattern(pattern.InNeighbors(u), /*outgoing=*/false)) {
      return false;
    }

    if (options.variant == MatchVariant::kVertexInduced) {
      // Exact adjacency: matched data neighbors of v must correspond to
      // matched pattern neighbors of u.
      for (uint32_t p = 0; p < depth; ++p) {
        VertexId w = mapping[p];
        VertexId uw = order[p];
        if (!pattern.HasEdge(u, uw) && data.HasEdge(v, w)) return false;
        if (pattern.directed() && !pattern.HasEdge(uw, u) &&
            data.HasEdge(w, v)) {
          return false;
        }
      }
    }

    // Look-ahead: v needs at least as many unmatched neighbors as u.
    uint32_t unmatched_data_nbrs = 0;
    for (const Neighbor& n : data.OutNeighbors(v)) {
      if (owner[n.v] == kInvalidVertex) ++unmatched_data_nbrs;
    }
    if (data.directed()) {
      for (const Neighbor& n : data.InNeighbors(v)) {
        if (owner[n.v] == kInvalidVertex) ++unmatched_data_nbrs;
      }
    }
    return unmatched_data_nbrs >= unmatched_pattern_nbrs;
  }

  bool Enumerate(uint32_t depth) {
    VertexId u = order[depth];
    const bool last = depth + 1 == order.size();
    auto try_vertex = [&](VertexId v) {
      ++stats.search_nodes;
      if (!CheckDeadline()) return false;
      if (owner[v] != kInvalidVertex) return true;
      if (!Feasible(depth, v)) return true;
      mapping[depth] = v;
      if (last) {
        ++stats.embeddings;
        if (options.max_embeddings > 0 &&
            stats.embeddings >= options.max_embeddings) {
          stats.limit_reached = true;
          return false;
        }
        return true;
      }
      owner[v] = depth;
      bool ok = Enumerate(depth + 1);
      owner[v] = kInvalidVertex;
      return ok;
    };
    if (pivot[depth] == kInvalidVertex) {
      for (VertexId v = 0; v < data.NumVertices(); ++v) {
        if (!try_vertex(v)) return false;
      }
      return true;
    }
    // Extend through the pivot's data neighbors (both directions).
    VertexId w = mapping[pivot[depth]];
    for (const Neighbor& n : data.OutNeighbors(w)) {
      if (!try_vertex(n.v)) return false;
    }
    if (data.directed()) {
      for (const Neighbor& n : data.InNeighbors(w)) {
        if (!try_vertex(n.v)) return false;
      }
    }
    (void)u;
    return true;
  }
};

// VF3-light style static order: rarest data label first, then highest
// degree, keeping the prefix connected.
std::vector<VertexId> Vf2Order(const Graph& data, const Graph& pattern) {
  const uint32_t n = pattern.NumVertices();
  std::vector<uint32_t> degree(n, 0);
  for (VertexId u = 0; u < n; ++u) degree[u] = pattern.Degree(u);
  std::vector<bool> chosen(n, false);
  std::vector<VertexId> order;
  order.reserve(n);
  auto label_freq = [&data](Label l) { return data.LabelFrequency(l); };
  for (uint32_t step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    bool best_connected = false;
    uint32_t best_freq = 0;
    uint32_t best_degree = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (chosen[u]) continue;
      bool connected = false;
      for (const Neighbor& nb : pattern.OutNeighbors(u)) {
        connected = connected || chosen[nb.v];
      }
      if (pattern.directed()) {
        for (const Neighbor& nb : pattern.InNeighbors(u)) {
          connected = connected || chosen[nb.v];
        }
      }
      uint32_t freq = label_freq(pattern.VertexLabel(u));
      bool better;
      if (best == kInvalidVertex) {
        better = true;
      } else if (step > 0 && connected != best_connected) {
        better = connected;
      } else if (freq != best_freq) {
        better = freq < best_freq;
      } else if (degree[u] != best_degree) {
        better = degree[u] > best_degree;
      } else {
        better = u < best;
      }
      if (better) {
        best = u;
        best_connected = connected;
        best_freq = freq;
        best_degree = degree[u];
      }
    }
    order.push_back(best);
    chosen[best] = true;
  }
  return order;
}

}  // namespace

Status Vf2Matcher::Match(const Graph& pattern, const BaselineOptions& options,
                         BaselineResult* result) const {
  if (options.variant == MatchVariant::kHomomorphic) {
    return Status::NotSupported("VF2/VF3 do not support homomorphic matching");
  }
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (pattern.directed() != data_->directed()) {
    return Status::InvalidArgument(
        "pattern and data graph directedness differ");
  }
  const Graph& data = *data_;
  Vf2State state{data, pattern, options, {}, {}, {}, {}, {}, {}, {},
                 BaselineResult{}, WallTimer{}, 0};

  WallTimer total;
  WallTimer stage;
  // "Index construction": VF3 classifies data vertices up front. The
  // degree table is the scalable core of it; its cost is charged to the
  // plan phase like the original's preprocessing.
  const uint32_t n = pattern.NumVertices();
  state.data_degree.resize(data.NumVertices());
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    state.data_degree[v] = data.Degree(v);
  }
  state.pattern_degree.resize(n);
  for (VertexId u = 0; u < n; ++u) state.pattern_degree[u] = pattern.Degree(u);

  state.order = Vf2Order(data, pattern);
  state.pos_of.assign(n, 0);
  for (uint32_t j = 0; j < n; ++j) state.pos_of[state.order[j]] = j;
  state.pivot.assign(n, kInvalidVertex);
  for (uint32_t j = 1; j < n; ++j) {
    VertexId u = state.order[j];
    uint32_t best = kInvalidVertex;
    for (const Neighbor& nb : pattern.OutNeighbors(u)) {
      uint32_t p = state.pos_of[nb.v];
      if (p < j && (best == kInvalidVertex || p < best)) best = p;
    }
    if (pattern.directed()) {
      for (const Neighbor& nb : pattern.InNeighbors(u)) {
        uint32_t p = state.pos_of[nb.v];
        if (p < j && (best == kInvalidVertex || p < best)) best = p;
      }
    }
    state.pivot[j] = best;
  }
  state.stats.plan_seconds = stage.Seconds();

  stage.Restart();
  state.mapping.assign(n, kInvalidVertex);
  state.owner.assign(data.NumVertices(), kInvalidVertex);
  state.timer.Restart();
  state.Enumerate(0);
  state.stats.enumerate_seconds = stage.Seconds();
  state.stats.total_seconds = total.Seconds();
  *result = state.stats;
  return Status::OK();
}

}  // namespace csce
