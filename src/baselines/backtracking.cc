#include "baselines/backtracking.h"

#include <algorithm>
#include <unordered_map>

#include "baselines/fsp.h"
#include "plan/gcf.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/timer.h"

namespace csce {
namespace {

constexpr uint64_t kDeadlineCheckInterval = 16384;

// One backward edge to verify when extending the partial embedding.
struct BackEdge {
  uint32_t pos;     // earlier position holding the matched neighbor
  Label elabel;
  bool outgoing;    // pattern arc u -> w (verify data arc f(u) -> f(w))
};

struct BackNegation {
  uint32_t pos;
  bool forbid_to;
  bool forbid_from;
};

struct Restriction {
  uint32_t other_pos;
  bool require_greater;
};

class BtState {
 public:
  BtState(const Graph& data, const Graph& pattern,
          const BaselineOptions& options,
          const std::vector<std::pair<VertexId, VertexId>>& restrictions)
      : data_(data), pattern_(pattern), options_(options),
        raw_restrictions_(restrictions) {}

  Status Run(BaselineResult* result);

 private:
  bool BuildCandidates();  // false: some pattern vertex has none
  bool PassesNlf(VertexId u, VertexId v) const;
  bool StructuralOk(uint32_t depth, VertexId v) const;
  bool Enumerate(uint32_t depth, FailingSet* fs);
  bool EnumerateNoFsp(uint32_t depth);
  bool CheckDeadline();
  bool Emit();

  const Graph& data_;
  const Graph& pattern_;
  const BaselineOptions& options_;
  const std::vector<std::pair<VertexId, VertexId>>& raw_restrictions_;

  bool injective_ = true;
  bool fsp_ = false;
  std::vector<VertexId> order_;
  std::vector<uint32_t> pos_of_;
  std::vector<std::vector<BackEdge>> back_edges_;      // per position
  std::vector<std::vector<BackNegation>> negations_;   // per position
  std::vector<std::vector<Restriction>> restrictions_; // per position
  std::vector<std::vector<uint32_t>> anc_;             // per position: A(pos)
  std::vector<DynamicBitset> candidate_bits_;          // per pattern vertex
  std::vector<std::vector<VertexId>> candidate_lists_; // per pattern vertex
  std::vector<VertexId> mapping_;                      // per position
  std::vector<uint32_t> owner_;                        // data vertex -> pos
  std::vector<FailingSet> fs_pool_;
  WallTimer timer_;
  BaselineResult stats_;
  bool aborted_ = false;
  uint64_t deadline_counter_ = 0;
};

bool BtState::PassesNlf(VertexId u, VertexId v) const {
  // v must have at least as many neighbors of each label as u, per
  // direction for directed graphs.
  auto check = [this](std::span<const Neighbor> pu,
                      std::span<const Neighbor> pv) {
    std::unordered_map<Label, int> need;
    for (const Neighbor& n : pu) ++need[pattern_.VertexLabel(n.v)];
    if (need.empty()) return true;
    size_t satisfied = 0;
    for (const Neighbor& n : pv) {
      auto it = need.find(data_.VertexLabel(n.v));
      if (it == need.end()) continue;
      if (--it->second == 0 && ++satisfied == need.size()) return true;
    }
    return false;
  };
  if (!check(pattern_.OutNeighbors(u), data_.OutNeighbors(v))) return false;
  if (pattern_.directed() &&
      !check(pattern_.InNeighbors(u), data_.InNeighbors(v))) {
    return false;
  }
  return true;
}

bool BtState::BuildCandidates() {
  const uint32_t n = pattern_.NumVertices();
  candidate_bits_.assign(n, DynamicBitset(data_.NumVertices()));
  candidate_lists_.assign(n, {});
  // Degree and NLF filters assume injectivity (two pattern neighbors
  // of u can collapse onto one data vertex under homomorphism), so the
  // homomorphic variant keeps only the label filter.
  const bool degree_filters =
      options_.variant != MatchVariant::kHomomorphic;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < data_.NumVertices(); ++v) {
      if (data_.VertexLabel(v) != pattern_.VertexLabel(u)) continue;
      if (degree_filters) {
        // LDF: degree filtering.
        if (data_.OutDegree(v) < pattern_.OutDegree(u)) continue;
        if (pattern_.directed() &&
            data_.InDegree(v) < pattern_.InDegree(u)) {
          continue;
        }
        if (options_.use_nlf && !PassesNlf(u, v)) continue;
      }
      candidate_bits_[u].Set(v);
      candidate_lists_[u].push_back(v);
    }
    if (candidate_lists_[u].empty()) return false;
  }
  return true;
}

bool BtState::StructuralOk(uint32_t depth, VertexId v) const {
  VertexId u = order_[depth];
  if (!candidate_bits_[u].Test(v)) return false;
  for (const BackEdge& e : back_edges_[depth]) {
    VertexId w = mapping_[e.pos];
    bool ok = e.outgoing ? data_.HasEdge(v, w, e.elabel)
                         : data_.HasEdge(w, v, e.elabel);
    if (!ok) return false;
  }
  for (const BackNegation& c : negations_[depth]) {
    VertexId w = mapping_[c.pos];
    if (c.forbid_to && data_.HasEdge(v, w)) return false;
    if (c.forbid_from && data_.HasEdge(w, v)) return false;
  }
  for (const Restriction& r : restrictions_[depth]) {
    VertexId other = mapping_[r.other_pos];
    if (r.require_greater ? (v <= other) : (v >= other)) return false;
  }
  return true;
}

bool BtState::CheckDeadline() {
  if (options_.time_limit_seconds <= 0) return true;
  if (++deadline_counter_ % kDeadlineCheckInterval != 0) return true;
  if (timer_.Seconds() > options_.time_limit_seconds) {
    stats_.timed_out = true;
    aborted_ = true;
    return false;
  }
  return true;
}

bool BtState::Emit() {
  ++stats_.embeddings;
  if (options_.max_embeddings > 0 &&
      stats_.embeddings >= options_.max_embeddings) {
    stats_.limit_reached = true;
    aborted_ = true;
    return false;
  }
  return true;
}

// Candidate iteration shared by both enumeration modes: invokes
// `body(v)` for each data vertex reachable through the pivot backward
// neighbor (or the full candidate list at unanchored positions).
template <typename Body>
void ForEachExtension(const Graph& data, const Graph& pattern,
                      const std::vector<VertexId>& order,
                      const std::vector<std::vector<BackEdge>>& back_edges,
                      const std::vector<std::vector<VertexId>>& lists,
                      const std::vector<VertexId>& mapping, uint32_t depth,
                      Body&& body) {
  const auto& edges = back_edges[depth];
  if (edges.empty()) {
    for (VertexId v : lists[order[depth]]) {
      if (!body(v)) return;
    }
    return;
  }
  // Pivot: the backward neighbor whose relevant adjacency is smallest.
  const BackEdge* pivot = &edges[0];
  size_t best = SIZE_MAX;
  for (const BackEdge& e : edges) {
    VertexId w = mapping[e.pos];
    size_t size = e.outgoing ? data.InNeighbors(w).size()
                             : data.OutNeighbors(w).size();
    if (size < best) {
      best = size;
      pivot = &e;
    }
  }
  VertexId w = mapping[pivot->pos];
  // Pattern arc u -> w: extensions are in-neighbors of f(w); arc
  // w -> u (or undirected): out-neighbors.
  std::span<const Neighbor> nbrs =
      pivot->outgoing ? data.InNeighbors(w) : data.OutNeighbors(w);
  (void)pattern;
  for (const Neighbor& n : nbrs) {
    if (n.elabel != pivot->elabel) continue;
    if (!body(n.v)) return;
  }
}

bool BtState::EnumerateNoFsp(uint32_t depth) {
  const bool last = depth + 1 == order_.size();
  bool keep_going = true;
  ForEachExtension(
      data_, pattern_, order_, back_edges_, candidate_lists_, mapping_, depth,
      [&](VertexId v) {
        ++stats_.search_nodes;
        if (!CheckDeadline()) return keep_going = false;
        if (injective_ && owner_[v] != kInvalidVertex) return true;
        if (!StructuralOk(depth, v)) return true;
        mapping_[depth] = v;
        if (last) {
          if (!Emit()) return keep_going = false;
          return true;
        }
        owner_[v] = injective_ ? depth : owner_[v];
        bool ok = EnumerateNoFsp(depth + 1);
        if (injective_) owner_[v] = kInvalidVertex;
        if (!ok) return keep_going = false;
        return true;
      });
  mapping_[depth] = kInvalidVertex;
  return keep_going;
}

bool BtState::Enumerate(uint32_t depth, FailingSet* fs) {
  const bool last = depth + 1 == order_.size();
  fs->Clear();
  bool keep_going = true;
  bool any_structural = false;
  bool pruned = false;
  ForEachExtension(
      data_, pattern_, order_, back_edges_, candidate_lists_, mapping_, depth,
      [&](VertexId v) {
        ++stats_.search_nodes;
        if (!CheckDeadline()) return keep_going = false;
        if (!StructuralOk(depth, v)) return true;
        any_structural = true;
        if (owner_[v] != kInvalidVertex) {
          // Conflict: attribute to both ancestor sets (DAF case 2).
          for (uint32_t p : anc_[depth]) fs->Add(p);
          for (uint32_t p : anc_[owner_[v]]) fs->Add(p);
          return true;
        }
        mapping_[depth] = v;
        if (last) {
          fs->MarkFull();  // an embedding: ancestors must not prune
          if (!Emit()) return keep_going = false;
          return true;
        }
        owner_[v] = depth;
        FailingSet& child = fs_pool_[depth + 1];
        bool ok = Enumerate(depth + 1, &child);
        owner_[v] = kInvalidVertex;
        if (!ok) return keep_going = false;
        if (child.AllowsPruneAt(depth)) {
          // The subtree failed independently of this position's
          // mapping: every sibling fails identically (DAF case 3).
          fs->CopyFrom(child);
          pruned = true;
          return false;
        }
        fs->UnionWith(child);
        return true;
      });
  if (!any_structural && !pruned && keep_going) {
    // Empty candidate set: attribute to this position's ancestors.
    for (uint32_t p : anc_[depth]) fs->Add(p);
  }
  mapping_[depth] = kInvalidVertex;
  return keep_going;
}

Status BtState::Run(BaselineResult* result) {
  const uint32_t n = pattern_.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty pattern");
  if (pattern_.directed() != data_.directed()) {
    return Status::InvalidArgument(
        "pattern and data graph directedness differ");
  }
  stats_ = BaselineResult{};
  injective_ = options_.variant != MatchVariant::kHomomorphic;
  // FSP exploits injective, edge-induced semantics only (paper
  // Section I: "failing set pruning ... only applies to edge-induced").
  // Symmetry restrictions are not captured by failing sets, so the two
  // never combine (GraphPi does not use FSP either).
  fsp_ = options_.use_fsp && options_.variant == MatchVariant::kEdgeInduced &&
         raw_restrictions_.empty();

  WallTimer total;
  WallTimer stage;
  GcfOptions gcf;
  gcf.use_cluster_tiebreak = false;  // RI is data-oblivious
  order_ = GreatestConstraintFirstOrder(pattern_, nullptr, gcf);
  pos_of_.assign(n, 0);
  for (uint32_t j = 0; j < n; ++j) pos_of_[order_[j]] = j;

  back_edges_.assign(n, {});
  negations_.assign(n, {});
  restrictions_.assign(n, {});
  anc_.assign(n, {});
  for (uint32_t j = 0; j < n; ++j) {
    VertexId u = order_[j];
    for (const Neighbor& nb : pattern_.OutNeighbors(u)) {
      uint32_t i = pos_of_[nb.v];
      if (i < j) {
        back_edges_[j].push_back(BackEdge{i, nb.elabel, /*outgoing=*/true});
      }
    }
    if (pattern_.directed()) {
      for (const Neighbor& nb : pattern_.InNeighbors(u)) {
        uint32_t i = pos_of_[nb.v];
        if (i < j) {
          back_edges_[j].push_back(BackEdge{i, nb.elabel, /*outgoing=*/false});
        }
      }
    } else {
      // Undirected: OutNeighbors covers everything; "outgoing" is
      // irrelevant because HasEdge is symmetric.
      for (BackEdge& e : back_edges_[j]) e.outgoing = false;
    }
    if (options_.variant == MatchVariant::kVertexInduced) {
      for (uint32_t i = 0; i < j; ++i) {
        VertexId w = order_[i];
        bool forbid_to;
        bool forbid_from;
        if (pattern_.directed()) {
          forbid_to = !pattern_.HasEdge(u, w);
          forbid_from = !pattern_.HasEdge(w, u);
        } else {
          bool adjacent = pattern_.HasEdge(u, w);
          forbid_to = !adjacent;
          forbid_from = !adjacent;
        }
        if (forbid_to || forbid_from) {
          negations_[j].push_back(BackNegation{i, forbid_to, forbid_from});
        }
      }
    }
    // A(u) must be the TRANSITIVE ancestor closure in the rooted query
    // DAG (DAF Section 5.2): a failure at u can be caused by any vertex
    // that transitively constrained u's candidates. Using only direct
    // backward neighbors makes the pruning unsound.
    anc_[j].push_back(j);
    for (const BackEdge& e : back_edges_[j]) {
      anc_[j].insert(anc_[j].end(), anc_[e.pos].begin(), anc_[e.pos].end());
    }
    std::sort(anc_[j].begin(), anc_[j].end());
    anc_[j].erase(std::unique(anc_[j].begin(), anc_[j].end()), anc_[j].end());
  }
  for (const auto& [a, b] : raw_restrictions_) {
    uint32_t pa = pos_of_[a];
    uint32_t pb = pos_of_[b];
    if (pa < pb) {
      restrictions_[pb].push_back(Restriction{pa, /*require_greater=*/true});
    } else {
      restrictions_[pa].push_back(Restriction{pb, /*require_greater=*/false});
    }
  }

  bool feasible = BuildCandidates();
  stats_.plan_seconds = stage.Seconds();

  stage.Restart();
  if (feasible) {
    mapping_.assign(n, kInvalidVertex);
    owner_.assign(data_.NumVertices(), kInvalidVertex);
    timer_.Restart();
    if (fsp_ && injective_) {
      fs_pool_.clear();
      fs_pool_.reserve(n + 1);
      for (uint32_t i = 0; i <= n; ++i) fs_pool_.emplace_back(n);
      Enumerate(0, &fs_pool_[0]);
    } else {
      EnumerateNoFsp(0);
    }
  }
  stats_.enumerate_seconds = stage.Seconds();
  stats_.total_seconds = total.Seconds();
  *result = stats_;
  return Status::OK();
}

}  // namespace

Status BacktrackingMatcher::Match(const Graph& pattern,
                                  const BaselineOptions& options,
                                  BaselineResult* result) const {
  static const std::vector<std::pair<VertexId, VertexId>> kNoRestrictions;
  return MatchWithRestrictions(pattern, options, kNoRestrictions, result);
}

Status BacktrackingMatcher::MatchWithRestrictions(
    const Graph& pattern, const BaselineOptions& options,
    const std::vector<std::pair<VertexId, VertexId>>& restrictions,
    BaselineResult* result) const {
  BtState state(*data_, pattern, options, restrictions);
  return state.Run(result);
}

}  // namespace csce
