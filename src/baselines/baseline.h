#ifndef CSCE_BASELINES_BASELINE_H_
#define CSCE_BASELINES_BASELINE_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/variant.h"
#include "util/status.h"

namespace csce {

/// Options shared by the reimplemented comparison algorithms. These
/// matchers operate directly on the adjacency-list Graph (the "existing
/// data structure" of the paper's Fig. 3), not on CCSR.
struct BaselineOptions {
  MatchVariant variant = MatchVariant::kEdgeInduced;
  uint64_t max_embeddings = 0;       // 0 = find all
  double time_limit_seconds = 0.0;   // 0 = no limit

  /// Backtracking matcher: neighborhood-label-frequency filtering on
  /// top of label-and-degree filtering.
  bool use_nlf = true;
  /// Backtracking matcher, edge-induced only: DAF/VEQ-style failing-set
  /// pruning.
  bool use_fsp = false;
};

struct BaselineResult {
  uint64_t embeddings = 0;
  bool timed_out = false;
  bool limit_reached = false;
  double plan_seconds = 0.0;       // ordering / filtering / relations
  double enumerate_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t search_nodes = 0;
};

}  // namespace csce

#endif  // CSCE_BASELINES_BASELINE_H_
