#ifndef CSCE_BASELINES_JOIN_H_
#define CSCE_BASELINES_JOIN_H_

#include "baselines/baseline.h"
#include "graph/graph.h"

namespace csce {

/// The RapidMatch/Graphflow-family baseline: a pipelined worst-case
/// optimal join over per-query edge relations. For every pattern edge
/// it materializes the relation of matching data arcs (hash-indexed,
/// sorted adjacency) — the per-query analogue of CCSR clustering, paid
/// on every task — then grows embeddings one vertex at a time by
/// intersecting relation adjacency lists. No SCE, no candidate reuse.
///
/// Supports edge-induced and homomorphic matching (as the originals
/// do); vertex-induced returns NotSupported.
class JoinMatcher {
 public:
  explicit JoinMatcher(const Graph* data) : data_(data) {}

  Status Match(const Graph& pattern, const BaselineOptions& options,
               BaselineResult* result) const;

 private:
  const Graph* data_;
};

}  // namespace csce

#endif  // CSCE_BASELINES_JOIN_H_
