#ifndef CSCE_BASELINES_BACKTRACKING_H_
#define CSCE_BASELINES_BACKTRACKING_H_

#include <utility>
#include <vector>

#include "baselines/baseline.h"
#include "graph/graph.h"

namespace csce {

/// The DAF/VEQ/GuP-family baseline: backtracking over the plain
/// adjacency-list graph with label-and-degree filtering (LDF),
/// neighborhood-label-frequency filtering (NLF), an RI (GCF) matching
/// order without data statistics, and optional failing-set pruning
/// (edge-induced only, like the originals). Supports all three SM
/// variants.
class BacktrackingMatcher {
 public:
  /// `data` must outlive the matcher.
  explicit BacktrackingMatcher(const Graph* data) : data_(data) {}

  Status Match(const Graph& pattern, const BaselineOptions& options,
               BaselineResult* result) const;

  /// As Match, additionally enforcing f(first) < f(second) symmetry
  /// restrictions (used by the GraphPi-like configuration).
  Status MatchWithRestrictions(
      const Graph& pattern, const BaselineOptions& options,
      const std::vector<std::pair<VertexId, VertexId>>& restrictions,
      BaselineResult* result) const;

 private:
  const Graph* data_;
};

}  // namespace csce

#endif  // CSCE_BASELINES_BACKTRACKING_H_
