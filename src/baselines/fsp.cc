#include "baselines/fsp.h"

namespace csce {

void FailingSet::CopyFrom(const FailingSet& other) {
  full_ = other.full_;
  bits_.Reset();
  bits_.OrWith(other.bits_);
}

}  // namespace csce
