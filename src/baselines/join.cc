#include "baselines/join.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "engine/candidates.h"
#include "plan/gcf.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace csce {
namespace {

constexpr uint64_t kDeadlineCheckInterval = 16384;

// The materialized relation of one pattern edge: adjacency in both join
// directions, with sorted neighbor lists.
struct Relation {
  std::unordered_map<VertexId, std::vector<VertexId>> forward;   // src->dsts
  std::unordered_map<VertexId, std::vector<VertexId>> backward;  // dst->srcs
  std::vector<VertexId> sources;  // sorted distinct keys of `forward`
  std::vector<VertexId> targets;  // sorted distinct keys of `backward`
};

constexpr uint32_t kNoRelation = 0xFFFFFFFFu;

struct Seed {
  uint32_t relation = kNoRelation;  // kNoRelation: label scan fallback
  bool use_sources = true;
};

struct JoinConstraint {
  uint32_t pos;         // earlier position of the matched endpoint
  uint32_t relation;    // pattern edge index
  bool from_forward;    // iterate relation.forward[f(w)] vs backward
};

struct JoinState {
  const Graph& data;
  const Graph& pattern;
  const BaselineOptions& options;

  std::vector<Relation> relations;  // one per logical pattern edge
  std::vector<VertexId> order;
  std::vector<std::vector<JoinConstraint>> constraints;  // per position
  std::vector<Seed> seeds;  // per position (first/unanchored only)
  std::vector<VertexId> mapping;
  DynamicBitset used;
  BaselineResult stats;
  WallTimer timer;
  bool aborted = false;
  bool injective = true;
  uint64_t deadline_counter = 0;

  bool CheckDeadline() {
    if (options.time_limit_seconds <= 0) return true;
    if (++deadline_counter % kDeadlineCheckInterval != 0) return true;
    if (timer.Seconds() > options.time_limit_seconds) {
      stats.timed_out = true;
      aborted = true;
      return false;
    }
    return true;
  }

  std::span<const VertexId> Adjacency(const JoinConstraint& c, VertexId w) {
    const Relation& r = relations[c.relation];
    const auto& map = c.from_forward ? r.forward : r.backward;
    auto it = map.find(w);
    if (it == map.end()) return {};
    return it->second;
  }

  bool Enumerate(uint32_t depth, std::vector<std::vector<VertexId>>* scratch) {
    std::vector<VertexId>& cands = (*scratch)[depth];
    cands.clear();
    if (constraints[depth].empty()) {
      if (seeds[depth].relation == kNoRelation) {
        // Isolated pattern vertex: scan by label.
        Label l = pattern.VertexLabel(order[depth]);
        for (VertexId v = 0; v < data.NumVertices(); ++v) {
          if (data.VertexLabel(v) == l) cands.push_back(v);
        }
      } else {
        const Relation& r = relations[seeds[depth].relation];
        cands = seeds[depth].use_sources ? r.sources : r.targets;
      }
    } else {
      // Intersect the relation adjacency lists, smallest first.
      std::vector<std::span<const VertexId>> lists;
      for (const JoinConstraint& c : constraints[depth]) {
        lists.push_back(Adjacency(c, mapping[c.pos]));
        if (lists.back().empty()) return true;
      }
      std::sort(lists.begin(), lists.end(),
                [](std::span<const VertexId> a, std::span<const VertexId> b) {
                  return a.size() < b.size();
                });
      cands.assign(lists[0].begin(), lists[0].end());
      for (size_t i = 1; i < lists.size() && !cands.empty(); ++i) {
        IntersectInPlace(&cands, lists[i]);
      }
    }
    const bool last = depth + 1 == order.size();
    for (VertexId v : cands) {
      ++stats.search_nodes;
      if (!CheckDeadline()) return false;
      if (injective && used.Test(v)) continue;
      mapping[depth] = v;
      if (last) {
        ++stats.embeddings;
        if (options.max_embeddings > 0 &&
            stats.embeddings >= options.max_embeddings) {
          stats.limit_reached = true;
          return false;
        }
      } else {
        if (injective) used.Set(v);
        bool ok = Enumerate(depth + 1, scratch);
        if (injective) used.Clear(v);
        if (!ok) return false;
      }
    }
    return true;
  }
};

}  // namespace

Status JoinMatcher::Match(const Graph& pattern,
                          const BaselineOptions& options,
                          BaselineResult* result) const {
  if (options.variant == MatchVariant::kVertexInduced) {
    return Status::NotSupported(
        "join baseline supports edge-induced and homomorphic matching only");
  }
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (pattern.directed() != data_->directed()) {
    return Status::InvalidArgument(
        "pattern and data graph directedness differ");
  }
  const Graph& data = *data_;
  JoinState state{data, pattern, options, {}, {}, {}, {}, {}, {}, {}, {},
                  false, true, 0};
  state.injective = options.variant != MatchVariant::kHomomorphic;

  WallTimer total;
  WallTimer stage;

  // Materialize one relation per logical pattern edge by a single scan
  // over the data edges (this cost recurs per query — CCSR pays it once
  // offline).
  std::vector<Edge> pattern_edges = pattern.Edges();
  state.relations.resize(pattern_edges.size());
  struct EdgeKey {
    Label src;
    Label dst;
    Label elabel;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      uint64_t h = k.src;
      h = h * 0x100000001B3ull ^ k.dst;
      h = h * 0x100000001B3ull ^ k.elabel;
      return std::hash<uint64_t>{}(h);
    }
  };
  std::unordered_map<EdgeKey, std::vector<uint32_t>, EdgeKeyHash> wanted;
  for (uint32_t i = 0; i < pattern_edges.size(); ++i) {
    const Edge& e = pattern_edges[i];
    wanted[EdgeKey{pattern.VertexLabel(e.src), pattern.VertexLabel(e.dst),
                   e.elabel}]
        .push_back(i);
  }
  data.ForEachEdge([&](const Edge& arc) {
    auto insert = [&](VertexId s, VertexId d, Label ls, Label ld) {
      auto it = wanted.find(EdgeKey{ls, ld, arc.elabel});
      if (it == wanted.end()) return;
      for (uint32_t rel : it->second) {
        state.relations[rel].forward[s].push_back(d);
        state.relations[rel].backward[d].push_back(s);
      }
    };
    Label ls = data.VertexLabel(arc.src);
    Label ld = data.VertexLabel(arc.dst);
    insert(arc.src, arc.dst, ls, ld);
    if (!data.directed()) insert(arc.dst, arc.src, ld, ls);
  });
  for (Relation& r : state.relations) {
    for (auto& [v, list] : r.forward) std::sort(list.begin(), list.end());
    for (auto& [v, list] : r.backward) std::sort(list.begin(), list.end());
    r.sources.reserve(r.forward.size());
    for (const auto& [v, list] : r.forward) r.sources.push_back(v);
    std::sort(r.sources.begin(), r.sources.end());
    r.targets.reserve(r.backward.size());
    for (const auto& [v, list] : r.backward) r.targets.push_back(v);
    std::sort(r.targets.begin(), r.targets.end());
  }

  // RI ordering (data-oblivious, like the originals' default).
  GcfOptions gcf;
  gcf.use_cluster_tiebreak = false;
  state.order = GreatestConstraintFirstOrder(pattern, nullptr, gcf);

  const uint32_t n = pattern.NumVertices();
  std::vector<uint32_t> pos_of(n, 0);
  for (uint32_t j = 0; j < n; ++j) pos_of[state.order[j]] = j;
  state.constraints.assign(n, {});
  state.seeds.assign(n, Seed{});
  for (uint32_t i = 0; i < pattern_edges.size(); ++i) {
    const Edge& e = pattern_edges[i];
    uint32_t ps = pos_of[e.src];
    uint32_t pd = pos_of[e.dst];
    if (ps < pd) {
      // e.src matched first: extend e.dst through forward adjacency.
      state.constraints[pd].push_back(JoinConstraint{ps, i, true});
    } else {
      state.constraints[ps].push_back(JoinConstraint{pd, i, false});
    }
    // Undirected graphs: the relation holds both orientations already.
  }
  // Seed relations for unanchored positions: any incident pattern
  // edge, taken from the side where the position's vertex sits.
  for (uint32_t i = 0; i < pattern_edges.size(); ++i) {
    uint32_t ps = pos_of[pattern_edges[i].src];
    if (state.constraints[ps].empty()) state.seeds[ps] = Seed{i, true};
    uint32_t pd = pos_of[pattern_edges[i].dst];
    if (state.constraints[pd].empty()) state.seeds[pd] = Seed{i, false};
  }
  state.stats.plan_seconds = stage.Seconds();

  stage.Restart();
  state.mapping.assign(n, kInvalidVertex);
  state.used.Resize(data.NumVertices());
  state.timer.Restart();
  std::vector<std::vector<VertexId>> scratch(n);
  state.Enumerate(0, &scratch);
  state.stats.enumerate_seconds = stage.Seconds();
  state.stats.total_seconds = total.Seconds();
  *result = state.stats;
  return Status::OK();
}

}  // namespace csce
