#ifndef CSCE_BASELINES_GRAPHPI_LIKE_H_
#define CSCE_BASELINES_GRAPHPI_LIKE_H_

#include "baselines/baseline.h"
#include "graph/graph.h"

namespace csce {

/// The GraphPi/GraphZero-family baseline: symmetry-breaking
/// enumeration. Plan generation enumerates the pattern's automorphism
/// group and derives f(a) < f(b) restrictions; execution finds one
/// canonical embedding per automorphism class and multiplies by the
/// group size (the paper does the same when comparing counts).
///
/// The automorphism enumeration is the scalability cliff on large
/// unlabeled patterns — the paper's Finding 2 — and it lands in
/// `plan_seconds`. Edge-induced only, like the original.
class GraphPiLikeMatcher {
 public:
  explicit GraphPiLikeMatcher(const Graph* data) : data_(data) {}

  Status Match(const Graph& pattern, const BaselineOptions& options,
               BaselineResult* result) const;

 private:
  const Graph* data_;
};

}  // namespace csce

#endif  // CSCE_BASELINES_GRAPHPI_LIKE_H_
