#ifndef CSCE_BASELINES_FSP_H_
#define CSCE_BASELINES_FSP_H_

#include <cstdint>

#include "util/bitset.h"

namespace csce {

/// A failing set over matching-order positions (DAF's failing-set
/// pruning, reimplemented for the baseline backtracking matcher). The
/// distinguished "full" value marks subtrees that contained an
/// embedding: it disables pruning in every ancestor.
class FailingSet {
 public:
  explicit FailingSet(uint32_t n) : bits_(n) {}

  void Clear() {
    bits_.Reset();
    full_ = false;
  }

  void MarkFull() { full_ = true; }
  bool full() const { return full_; }

  void Add(uint32_t pos) { bits_.Set(pos); }

  void UnionWith(const FailingSet& other) {
    if (other.full_) {
      full_ = true;
      return;
    }
    bits_.OrWith(other.bits_);
  }

  void CopyFrom(const FailingSet& other);

  bool Contains(uint32_t pos) const { return full_ || bits_.Test(pos); }

  /// The DAF pruning condition: a child subtree failed for reasons not
  /// involving this position, so the remaining sibling candidates at
  /// this position are doomed too.
  bool AllowsPruneAt(uint32_t pos) const { return !full_ && !bits_.Test(pos); }

 private:
  DynamicBitset bits_;
  bool full_ = false;
};

}  // namespace csce

#endif  // CSCE_BASELINES_FSP_H_
