#ifndef CSCE_BASELINES_VF2_H_
#define CSCE_BASELINES_VF2_H_

#include "baselines/baseline.h"
#include "graph/graph.h"

namespace csce {

/// The VF2/VF3-family baseline: state-space search with per-query data
/// graph preprocessing (neighbor label-count tables, VF3's "index") and
/// degree/label look-ahead feasibility rules. Supports the
/// vertex-induced (VF3's native problem) and edge-induced variants on
/// directed and undirected labeled graphs; homomorphic returns
/// NotSupported, like the originals.
///
/// The preprocessing is what makes this family strong on small dense
/// graphs and what fails to scale to graphs of millions of vertices
/// (paper Finding 4 discussion).
class Vf2Matcher {
 public:
  explicit Vf2Matcher(const Graph* data) : data_(data) {}

  Status Match(const Graph& pattern, const BaselineOptions& options,
               BaselineResult* result) const;

 private:
  const Graph* data_;
};

}  // namespace csce

#endif  // CSCE_BASELINES_VF2_H_
