#include "baselines/graphpi_like.h"

#include "baselines/backtracking.h"
#include "plan/symmetry.h"
#include "util/timer.h"

namespace csce {

Status GraphPiLikeMatcher::Match(const Graph& pattern,
                                 const BaselineOptions& options,
                                 BaselineResult* result) const {
  if (options.variant != MatchVariant::kEdgeInduced) {
    return Status::NotSupported(
        "symmetry-breaking enumeration is edge-induced only");
  }
  WallTimer total;
  SymmetryInfo symmetry = ComputeSymmetryBreaking(pattern);

  BaselineOptions inner = options;
  inner.use_fsp = false;  // GraphPi relies on symmetry, not failing sets
  if (inner.time_limit_seconds > 0) {
    // The remaining budget after (possibly expensive) plan generation.
    double left = inner.time_limit_seconds - symmetry.generation_seconds;
    inner.time_limit_seconds = left > 0.001 ? left : 0.001;
  }
  BacktrackingMatcher bt(data_);
  CSCE_RETURN_IF_ERROR(bt.MatchWithRestrictions(
      pattern, inner, symmetry.restrictions, result));
  result->embeddings *= symmetry.automorphism_count;
  result->plan_seconds += symmetry.generation_seconds;
  result->total_seconds = total.Seconds();
  return Status::OK();
}

}  // namespace csce
