#include "analysis/motif_clustering.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "analysis/motif_adjacency.h"
#include "graph/graph_builder.h"
#include "util/rng.h"
#include "util/timer.h"

namespace csce {
namespace {

// Weighted label propagation: every vertex repeatedly adopts the label
// with the largest incident weight until a fixed point (or the sweep
// cap). Deterministic given the seed.
std::vector<uint32_t> LabelPropagation(
    uint32_t num_vertices,
    const std::vector<std::vector<std::pair<VertexId, double>>>& adj,
    uint64_t seed) {
  std::vector<uint32_t> label(num_vertices);
  for (uint32_t v = 0; v < num_vertices; ++v) label[v] = v;

  Rng rng(seed);
  std::vector<VertexId> visit_order(num_vertices);
  for (uint32_t v = 0; v < num_vertices; ++v) visit_order[v] = v;
  for (size_t i = num_vertices; i > 1; --i) {
    std::swap(visit_order[i - 1], visit_order[rng.Uniform(i)]);
  }

  std::unordered_map<uint32_t, double> tally;
  for (int sweep = 0; sweep < 100; ++sweep) {
    bool changed = false;
    for (VertexId v : visit_order) {
      if (adj[v].empty()) continue;
      tally.clear();
      for (const auto& [w, weight] : adj[v]) tally[label[w]] += weight;
      uint32_t best_label = label[v];
      double best_weight = -1.0;
      for (const auto& [l, weight] : tally) {
        if (weight > best_weight ||
            (weight == best_weight && l < best_label)) {
          best_label = l;
          best_weight = weight;
        }
      }
      if (best_label != label[v]) {
        label[v] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Densify cluster ids.
  std::unordered_map<uint32_t, uint32_t> remap;
  for (uint32_t v = 0; v < num_vertices; ++v) {
    auto [it, inserted] =
        remap.emplace(label[v], static_cast<uint32_t>(remap.size()));
    label[v] = it->second;
  }
  return label;
}

}  // namespace

Status HigherOrderClustering(const Graph& g, uint32_t clique_size,
                             uint64_t seed, uint64_t max_instances,
                             ClusteringResult* out) {
  if (g.directed()) {
    return Status::NotSupported("clique motifs need an undirected graph");
  }
  if (clique_size < 2) {
    return Status::InvalidArgument("clique size must be >= 2");
  }
  *out = ClusteringResult{};

  // The k-clique pattern, unlabeled.
  GraphBuilder builder(/*directed=*/false);
  builder.AddVertices(clique_size, kNoLabel);
  for (VertexId a = 0; a < clique_size; ++a) {
    for (VertexId b = a + 1; b < clique_size; ++b) builder.AddEdge(a, b);
  }
  Graph clique;
  CSCE_RETURN_IF_ERROR(builder.Build(&clique));

  MotifAdjacency motif_adjacency;
  CSCE_RETURN_IF_ERROR(
      BuildMotifAdjacency(g, clique, max_instances, &motif_adjacency));
  out->motif_instances = motif_adjacency.instances();
  out->motif_seconds = motif_adjacency.build_seconds();

  WallTimer cluster_timer;
  auto adj = motif_adjacency.ToAdjacency(g.NumVertices());
  out->assignment = LabelPropagation(g.NumVertices(), adj, seed);
  out->num_clusters =
      out->assignment.empty()
          ? 0
          : *std::max_element(out->assignment.begin(), out->assignment.end()) +
                1;
  out->cluster_seconds = cluster_timer.Seconds();
  return Status::OK();
}

Status EdgeClustering(const Graph& g, uint64_t seed, ClusteringResult* out) {
  *out = ClusteringResult{};
  WallTimer cluster_timer;
  std::vector<std::vector<std::pair<VertexId, double>>> adj(g.NumVertices());
  g.ForEachEdge([&adj](const Edge& e) {
    adj[e.src].emplace_back(e.dst, 1.0);
    adj[e.dst].emplace_back(e.src, 1.0);
  });
  out->assignment = LabelPropagation(g.NumVertices(), adj, seed);
  out->num_clusters =
      out->assignment.empty()
          ? 0
          : *std::max_element(out->assignment.begin(), out->assignment.end()) +
                1;
  out->cluster_seconds = cluster_timer.Seconds();
  return Status::OK();
}

}  // namespace csce
