#ifndef CSCE_ANALYSIS_F1_H_
#define CSCE_ANALYSIS_F1_H_

#include <cstdint>
#include <vector>

namespace csce {

/// Pair-counting precision/recall/F1 of a clustering against ground
/// truth: a vertex pair is positive when both vertices share a cluster.
struct PairScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

PairScores PairCountingF1(const std::vector<uint32_t>& predicted,
                          const std::vector<uint32_t>& truth);

}  // namespace csce

#endif  // CSCE_ANALYSIS_F1_H_
