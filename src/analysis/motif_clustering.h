#ifndef CSCE_ANALYSIS_MOTIF_CLUSTERING_H_
#define CSCE_ANALYSIS_MOTIF_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace csce {

/// Result of one clustering run (paper Section VII-G case study).
struct ClusteringResult {
  std::vector<uint32_t> assignment;  // vertex -> cluster id
  uint32_t num_clusters = 0;
  double motif_seconds = 0.0;    // time spent finding motif instances
  double cluster_seconds = 0.0;  // label propagation time
  uint64_t motif_instances = 0;  // k-cliques counted (0 for edge-based)
};

/// Higher-order graph clustering: weights every edge by the number of
/// `clique_size`-clique embeddings (found with the CSCE engine) that
/// contain both endpoints, then runs weighted label propagation. This
/// is the G_P construction of Benson et al. applied with large motifs,
/// which is exactly the workload the paper's case study accelerates.
///
/// `max_instances` caps the clique enumeration (0 = all).
Status HigherOrderClustering(const Graph& g, uint32_t clique_size,
                             uint64_t seed, uint64_t max_instances,
                             ClusteringResult* out);

/// Baseline: label propagation on raw (unit-weight) edges.
Status EdgeClustering(const Graph& g, uint64_t seed, ClusteringResult* out);

}  // namespace csce

#endif  // CSCE_ANALYSIS_MOTIF_CLUSTERING_H_
