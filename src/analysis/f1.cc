#include "analysis/f1.h"

#include "util/logging.h"

namespace csce {

PairScores PairCountingF1(const std::vector<uint32_t>& predicted,
                          const std::vector<uint32_t>& truth) {
  CSCE_CHECK(predicted.size() == truth.size());
  const size_t n = predicted.size();
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t fn = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      bool same_pred = predicted[a] == predicted[b];
      bool same_true = truth[a] == truth[b];
      if (same_pred && same_true) {
        ++tp;
      } else if (same_pred) {
        ++fp;
      } else if (same_true) {
        ++fn;
      }
    }
  }
  PairScores s;
  if (tp + fp > 0) s.precision = static_cast<double>(tp) / (tp + fp);
  if (tp + fn > 0) s.recall = static_cast<double>(tp) / (tp + fn);
  if (s.precision + s.recall > 0) {
    s.f1 = 2 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

}  // namespace csce
