#ifndef CSCE_ANALYSIS_MOTIF_ADJACENCY_H_
#define CSCE_ANALYSIS_MOTIF_ADJACENCY_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace csce {

/// The motif co-occurrence ("motif adjacency") matrix of Benson et
/// al., which the paper's introduction calls G_P: W(a, b) counts the
/// motif instances containing both data vertices a and b. Each motif
/// instance (automorphism class) is counted once — the enumeration uses
/// CSCE with symmetry-breaking restrictions derived from the motif.
class MotifAdjacency {
 public:
  double Weight(VertexId a, VertexId b) const {
    auto it = weights_.find(Key(a, b));
    return it == weights_.end() ? 0.0 : it->second;
  }

  /// Weighted adjacency lists over `num_vertices` vertices (symmetric).
  std::vector<std::vector<std::pair<VertexId, double>>> ToAdjacency(
      uint32_t num_vertices) const;

  uint64_t instances() const { return instances_; }
  double build_seconds() const { return build_seconds_; }
  size_t NumWeightedPairs() const { return weights_.size(); }

 private:
  friend Status BuildMotifAdjacency(const Graph&, const Graph&, uint64_t,
                                    MotifAdjacency*);

  static uint64_t Key(VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_map<uint64_t, double> weights_;
  uint64_t instances_ = 0;
  double build_seconds_ = 0.0;
};

/// Builds the motif adjacency of `motif` instances in `g`
/// (edge-induced). `max_instances` caps the enumeration (0 = all).
/// The motif must be undirected and connected, like `g`.
Status BuildMotifAdjacency(const Graph& g, const Graph& motif,
                           uint64_t max_instances, MotifAdjacency* out);

}  // namespace csce

#endif  // CSCE_ANALYSIS_MOTIF_ADJACENCY_H_
