#include "analysis/motif_adjacency.h"

#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "plan/symmetry.h"
#include "util/timer.h"

namespace csce {

std::vector<std::vector<std::pair<VertexId, double>>>
MotifAdjacency::ToAdjacency(uint32_t num_vertices) const {
  std::vector<std::vector<std::pair<VertexId, double>>> adj(num_vertices);
  for (const auto& [key, w] : weights_) {
    VertexId a = static_cast<VertexId>(key >> 32);
    VertexId b = static_cast<VertexId>(key & 0xFFFFFFFFu);
    adj[a].emplace_back(b, w);
    adj[b].emplace_back(a, w);
  }
  return adj;
}

Status BuildMotifAdjacency(const Graph& g, const Graph& motif,
                           uint64_t max_instances, MotifAdjacency* out) {
  if (g.directed() || motif.directed()) {
    return Status::NotSupported(
        "motif adjacency is defined for undirected graphs");
  }
  if (motif.NumVertices() < 2) {
    return Status::InvalidArgument("motif needs at least 2 vertices");
  }
  *out = MotifAdjacency();
  WallTimer timer;

  Ccsr gc = Ccsr::Build(g);
  CsceMatcher matcher(&gc);
  MatchOptions options;
  options.variant = MatchVariant::kEdgeInduced;
  options.max_embeddings = max_instances;
  // One embedding per automorphism class.
  SymmetryInfo symmetry = ComputeSymmetryBreaking(motif);
  options.restrictions = symmetry.restrictions;

  const uint32_t k = motif.NumVertices();
  MatchResult result;
  CSCE_RETURN_IF_ERROR(matcher.MatchWithCallback(
      motif, options,
      [out, k](std::span<const VertexId> mapping) {
        for (uint32_t a = 0; a < k; ++a) {
          for (uint32_t b = a + 1; b < k; ++b) {
            out->weights_[MotifAdjacency::Key(mapping[a], mapping[b])] += 1.0;
          }
        }
        return true;
      },
      &result));
  out->instances_ = result.embeddings;
  out->build_seconds_ = timer.Seconds();
  return Status::OK();
}

}  // namespace csce
