// Ablation study for the design choices DESIGN.md calls out: SCE
// candidate reuse, NEC cache sharing, the LDF degree filter, cluster
// tie-breaking + LDSF ordering, and the systematic cost-based optimizer
// — each toggled independently against the full configuration, across
// two data shapes (labeled skewed Patent, unlabeled sparse RoadCA).

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"

namespace csce {
namespace {

struct Config {
  const char* name;
  PlanOptions plan;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  configs.push_back({"full", PlanOptions{}});
  {
    PlanOptions p;
    p.use_sce = false;
    configs.push_back({"-sce", p});
  }
  {
    PlanOptions p;
    p.use_nec = false;
    configs.push_back({"-nec", p});
  }
  {
    PlanOptions p;
    p.use_degree_filter = false;
    configs.push_back({"-ldf", p});
  }
  {
    PlanOptions p;
    p.use_ldsf = false;
    p.use_cluster_tiebreak = false;
    configs.push_back({"-ldsf-tb", p});
  }
  {
    PlanOptions p;
    p.use_cost_based = true;
    configs.push_back({"costbased", p});
  }
  return configs;
}

void RunDataset(const char* name, const Graph& graph, uint32_t size,
                bool complex_like, bench::BenchJson* json) {
  Ccsr gc = Ccsr::Build(graph);
  CsceMatcher matcher(&gc);
  std::vector<Graph> patterns;
  Status st = complex_like
                  ? SampleDensePatterns(graph, size, 3.0,
                                        bench::PatternsPerConfig(),
                                        size * 19 + 3, &patterns)
                  : SamplePatterns(graph, size, PatternDensity::kDense,
                                   bench::PatternsPerConfig(),
                                   size * 19 + 3, &patterns);
  if (!st.ok()) {
    std::printf("%-12s (sampling failed: %s)\n", name,
                st.ToString().c_str());
    return;
  }
  std::printf("%-12s", name);
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("dataset", name);
  row.Set("pattern_size", size);
  obs::JsonValue cells = obs::JsonValue::Object();
  for (const Config& config : Configs()) {
    double total = 0;
    uint64_t reference = 0;
    bool mismatch = false;
    for (const Graph& p : patterns) {
      MatchOptions options;
      options.variant = MatchVariant::kEdgeInduced;
      options.time_limit_seconds = bench::TimeLimit();
      options.plan = config.plan;
      MatchResult r;
      Status match = matcher.Match(p, options, &r);
      CSCE_CHECK(match.ok());
      total += r.timed_out ? bench::TimeLimit() : r.total_seconds;
      if (!r.timed_out) {
        if (reference == 0) {
          reference = r.embeddings;
        }
      }
      (void)mismatch;
    }
    double mean = total / patterns.size();
    std::printf(" %10.4f", mean);
    cells.Set(config.name, mean);
  }
  row.Set("mean_seconds", std::move(cells));
  json->AddRow(std::move(row));
  std::printf("\n");
}

}  // namespace
}  // namespace csce

int main() {
  using namespace csce;
  std::printf("Ablation: mean edge-induced total seconds per configuration "
              "(limit %.1fs, %u patterns)\n\n",
              bench::TimeLimit(), bench::PatternsPerConfig());
  std::printf("%-12s", "dataset");
  for (const Config& config : Configs()) {
    std::printf(" %10s", config.name);
  }
  std::printf("\n");
  bench::PrintRule(80);
  bench::BenchJson json("ablation");
  json.Config("time_limit_seconds", bench::TimeLimit());
  json.Config("patterns_per_config", bench::PatternsPerConfig());
  RunDataset("Patent-16", datasets::Patent(20), 16, /*complex_like=*/true,
             &json);
  if (!bench::QuickMode()) {
    RunDataset("Patent-24", datasets::Patent(20), 24, /*complex_like=*/true,
               &json);
  }
  RunDataset("RoadCA-16", datasets::RoadCa(), 16, /*complex_like=*/false,
             &json);
  if (!bench::QuickMode()) {
    RunDataset("RoadCA-32", datasets::RoadCa(), 32, /*complex_like=*/false,
               &json);
  }
  RunDataset("DIP-9", datasets::Dip(), 9, /*complex_like=*/true, &json);
  std::printf("\nEach column disables one mechanism; 'full' is CSCE as "
              "shipped, 'costbased' swaps GCF+LDSF for the systematic "
              "optimizer.\n");
  return 0;
}
