// Fig. 9: scalability with the number of embeddings — 10 patterns of
// sizes 8 and 9 on the DIP network, arranged in ascending order of
// embedding count, edge-induced. GraphPi's plan cost dominating its
// total time (flat line) is the paper's Finding 9 sidebar.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"

int main() {
  using namespace csce;
  using bench::AlgoOutcome;
  using bench::Runners;

  bench::BenchJson json("fig9_embeddings");
  json.Config("time_limit_seconds", bench::TimeLimit());
  Graph dip = datasets::Dip();
  Runners runners(&dip);
  const MatchVariant kV = MatchVariant::kEdgeInduced;
  std::printf("Fig. 9 analogue: total time vs number of embeddings on DIP "
              "(edge-induced, limit %.1fs)\n",
              bench::TimeLimit());

  const uint32_t per_size = bench::QuickMode() ? 4 : 10;
  for (uint32_t size : {8u, 9u}) {
    std::vector<Graph> patterns;
    Status st = SampleDensePatterns(dip, size, /*min_avg_degree=*/3.0,
                                    per_size, size * 31 + 7, &patterns);
    if (!st.ok()) {
      std::printf("sampling failed for size %u\n", size);
      continue;
    }
    struct Row {
      uint64_t embeddings;
      double csce;
      double bt;
      double join;
      double graphpi;
    };
    std::vector<Row> rows;
    for (const Graph& p : patterns) {
      AlgoOutcome c = runners.Csce(p, kV);
      rows.push_back({c.embeddings, c.total_seconds,
                      runners.BtFsp(p, kV).total_seconds,
                      runners.Join(p, kV).total_seconds,
                      runners.GraphPi(p, kV).total_seconds});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) {
                return a.embeddings < b.embeddings;
              });
    std::printf("\n(%c) patterns of %u vertices\n", size == 8 ? 'a' : 'b',
                size);
    bench::PrintRule(80);
    std::printf("%16s %10s %10s %10s %10s\n", "embeddings", "CSCE",
                "BT-FSP", "WCOJ-RM", "GraphPi");
    bench::PrintRule(80);
    for (const Row& r : rows) {
      std::printf("%16llu %10.4f %10.4f %10.4f %10.4f\n",
                  static_cast<unsigned long long>(r.embeddings), r.csce,
                  r.bt, r.join, r.graphpi);
      obs::JsonValue jrow = obs::JsonValue::Object();
      jrow.Set("pattern_size", size);
      jrow.Set("embeddings", r.embeddings);
      jrow.Set("csce_seconds", r.csce);
      jrow.Set("btfsp_seconds", r.bt);
      jrow.Set("wcoj_seconds", r.join);
      jrow.Set("graphpi_seconds", r.graphpi);
      json.AddRow(std::move(jrow));
    }
  }
  std::printf("\nExpected shape (Finding 9): total time grows with the "
              "embedding count for all algorithms except the symmetry "
              "breaker, whose plan cost dominates.\n");
  return 0;
}
