// Section VII-G case study: department detection on an EMAIL-EU-like
// communication graph. Edge-based clustering vs 8-clique higher-order
// clustering (F1 against the planted departments), plus the motif
// search speed of CSCE vs the backtracking baseline — the paper reports
// 0.398 -> 0.515 F1 and 11.57s -> 0.39s.

#include <cstdio>
#include <vector>

#include "analysis/f1.h"
#include "bench/bench_json.h"
#include "analysis/motif_clustering.h"
#include "baselines/backtracking.h"
#include "gen/datasets.h"
#include "graph/graph_builder.h"
#include "plan/symmetry.h"
#include "util/timer.h"

int main() {
  using namespace csce;
  std::vector<uint32_t> departments;
  Graph email = datasets::EmailEu(&departments);
  const uint32_t kClique = 8;

  ClusteringResult edges;
  Status st = EdgeClustering(email, 7, &edges);
  CSCE_CHECK(st.ok());
  PairScores edge_scores = PairCountingF1(edges.assignment, departments);

  ClusteringResult motifs;
  st = HigherOrderClustering(email, kClique, 7, /*max_instances=*/5'000'000,
                             &motifs);
  CSCE_CHECK(st.ok());
  PairScores motif_scores = PairCountingF1(motifs.assignment, departments);

  std::printf("Case study analogue: EMAIL-EU department clustering\n\n");
  std::printf("%-22s %8s %10s\n", "method", "F1", "motif(s)");
  std::printf("%-22s %8.3f %10s\n", "edge-based", edge_scores.f1, "-");
  std::printf("%-22s %8.3f %10.3f\n", "8-clique (CSCE)", motif_scores.f1,
              motifs.motif_seconds);

  // Motif-search speed: the same canonical 8-clique enumeration with
  // the backtracking baseline.
  GraphBuilder cb(false);
  cb.AddVertices(kClique, kNoLabel);
  for (VertexId a = 0; a < kClique; ++a) {
    for (VertexId b = a + 1; b < kClique; ++b) cb.AddEdge(a, b);
  }
  Graph clique;
  CSCE_CHECK(cb.Build(&clique).ok());
  SymmetryInfo symmetry = ComputeSymmetryBreaking(clique);
  BacktrackingMatcher bt(&email);
  BaselineOptions options;
  options.time_limit_seconds = 120;
  WallTimer timer;
  BaselineResult r;
  CSCE_CHECK(
      bt.MatchWithRestrictions(clique, options, symmetry.restrictions, &r)
          .ok());
  double baseline_seconds = timer.Seconds();
  std::printf("\n8-clique instances: %llu (canonical)\n",
              static_cast<unsigned long long>(r.embeddings));
  std::printf("motif search: CSCE %.3fs vs backtracking %.3fs (%.1fx)%s\n",
              motifs.motif_seconds, baseline_seconds,
              motifs.motif_seconds > 0
                  ? baseline_seconds / motifs.motif_seconds
                  : 0.0,
              r.timed_out ? " [baseline timed out]" : "");

  bench::BenchJson json("case_study_clustering");
  json.Config("clique_size", kClique);
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("edge_f1", edge_scores.f1);
  row.Set("motif_f1", motif_scores.f1);
  row.Set("motif_seconds", motifs.motif_seconds);
  row.Set("backtracking_seconds", baseline_seconds);
  row.Set("backtracking_timed_out", r.timed_out);
  row.Set("clique_instances", r.embeddings);
  json.AddRow(std::move(row));
  std::printf("\npaper reference (real EMAIL-EU): F1 0.398 -> 0.515, motif "
              "search 11.57s -> 0.39s\n");
  return 0;
}
