// Fig. 13: query-plan quality — the same engine executing plans of
// increasing sophistication (RI only, RI + cluster tie-breaks, full
// CSCE with LDSF+SCE), next to the RapidMatch-like join baseline whose
// plan the paper uses as the reference. Patent-like graph,
// edge-induced.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"

int main() {
  using namespace csce;
  using bench::Runners;

  Graph patent = datasets::Patent(20);
  Runners runners(&patent);
  CsceMatcher matcher(&runners.ccsr());
  const MatchVariant kV = MatchVariant::kEdgeInduced;

  auto run_config = [&](const Graph& p, bool tiebreak, bool ldsf,
                        bool sce) {
    MatchOptions options;
    options.variant = kV;
    options.time_limit_seconds = bench::TimeLimit();
    options.plan.use_cluster_tiebreak = tiebreak;
    options.plan.use_ldsf = ldsf;
    options.plan.use_sce = sce;
    options.plan.use_nec = sce;
    MatchResult r;
    Status st = matcher.Match(p, options, &r);
    CSCE_CHECK(st.ok());
    return r.timed_out ? bench::TimeLimit() : r.total_seconds;
  };

  std::printf("Fig. 13 analogue: plan quality on Patent (edge-induced, "
              "mean seconds over %u patterns, limit %.1fs)\n\n",
              bench::PatternsPerConfig(), bench::TimeLimit());
  bench::BenchJson json("fig13_plan_quality");
  json.Config("time_limit_seconds", bench::TimeLimit());
  json.Config("patterns_per_config", bench::PatternsPerConfig());
  std::printf("%-8s %12s %12s %12s %12s\n", "size", "RM-plan", "RI",
              "RI+Cluster", "CSCE");
  std::vector<uint32_t> sizes = {8u, 12u, 16u, 24u};
  if (bench::QuickMode()) sizes = {8u, 12u};
  for (uint32_t size : sizes) {
    std::vector<Graph> patterns;
    // Complex-like patterns keep result sets finite so the plans can
    // actually be told apart within the time limit.
    Status st = SampleDensePatterns(patent, size, /*min_avg_degree=*/3.2,
                                    bench::PatternsPerConfig(),
                                    size * 3 + 2, &patterns);
    if (!st.ok()) continue;
    double rm = 0;
    double ri = 0;
    double ri_cluster = 0;
    double full = 0;
    for (const Graph& p : patterns) {
      rm += runners.Join(p, kV).total_seconds;
      ri += run_config(p, /*tiebreak=*/false, /*ldsf=*/false, /*sce=*/false);
      ri_cluster +=
          run_config(p, /*tiebreak=*/true, /*ldsf=*/false, /*sce=*/false);
      full += run_config(p, /*tiebreak=*/true, /*ldsf=*/true, /*sce=*/true);
    }
    double n = patterns.size();
    std::printf("%-8u %12.4f %12.4f %12.4f %12.4f\n", size, rm / n, ri / n,
                ri_cluster / n, full / n);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("pattern_size", size);
    row.Set("rm_plan_seconds", rm / n);
    row.Set("ri_seconds", ri / n);
    row.Set("ri_cluster_seconds", ri_cluster / n);
    row.Set("csce_seconds", full / n);
    json.AddRow(std::move(row));
  }
  std::printf("\nExpected shape (Finding 13): CSCE <= RI+Cluster <= RI, "
              "with the full plan the best overall.\n");
  return 0;
}
