// Ablation for the proactive pruning layer: each pass (aux, ree, lpi)
// toggled alone and the full stack, against pruning-off, reporting the
// work-defining counters the passes exist to shrink — search_nodes and
// intersected elements — plus wall time and the embedding count.
//
// Two panels:
//  - hetero-dup: a synthetic Table-IV-style heterogeneous graph made
//    of disjoint hub gadgets with duplicate-adjacency decoy vertices
//    whose deeper closure fails. Every pass provably bites here, and
//    the run cross-checks that every configuration returns the exact
//    same sorted embedding set as pruning-off at 1 and 8 threads.
//  - Patent: sampled dense patterns on the paper's labeled citation
//    graph, showing the passes on organic skew.

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "engine/prune/prune.h"
#include "gen/datasets.h"
#include "tests/test_util.h"

namespace csce {
namespace {

struct Config {
  const char* name;
  PruneOptions prune;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  configs.push_back({"off", PruneOptions{}});
  {
    PruneOptions p;
    p.aux = true;
    configs.push_back({"aux", p});
  }
  {
    PruneOptions p;
    p.ree = true;
    configs.push_back({"ree", p});
  }
  {
    PruneOptions p;
    p.lpi = true;
    configs.push_back({"lpi", p});
  }
  configs.push_back({"all", AllPruneOptions()});
  return configs;
}

constexpr Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

// One hub gadget per copy. The pattern (below) is rooted at B, the
// planner orders it (B, C, D, E), and per copy the gadget holds one
// embedding (b_good, c_good, d_good, e_good) plus six E-deficient
// B-decoys whose subtrees are nonempty but doomed: each decoy sees two
// interchangeable C children (c0, c1), pays a padded D intersection to
// reach dy, and only then dies on the empty E closure. So:
//  - lpi removes the decoys at the B root (no E-labeled neighbor),
//  - aux empty-cuts them there (empty E-projection),
//  - ree skips c1 after c0's subtree completes with zero embeddings,
// and every pass shaves both search nodes and intersected elements.
// The junk pairs tune cluster sizes: B-E pairs keep (B,D) the seed
// cluster (its sources include the decoys via dy), and C-E pairs keep
// (C,E) large so the planner orders D before E; a0 only pads decoy
// degree past the root's mindeg filter.
Graph HeteroDupGraph(uint32_t copies) {
  std::vector<Label> vlabels;
  std::vector<Edge> edges;
  for (uint32_t k = 0; k < copies; ++k) {
    const VertexId base = static_cast<VertexId>(vlabels.size());
    // a0, b_good, c_good, d_good, e_good, c0, c1, dy
    vlabels.insert(vlabels.end(), {kA, kB, kC, kD, kE, kC, kC, kD});
    const VertexId a0 = base, bg = base + 1, cg = base + 2, dg = base + 3,
                   eg = base + 4, c0 = base + 5, c1 = base + 6,
                   dy = base + 7;
    edges.push_back({a0, bg});
    edges.push_back({bg, cg});
    edges.push_back({bg, dg});
    edges.push_back({bg, eg});
    edges.push_back({cg, dg});
    edges.push_back({cg, eg});
    edges.push_back({c0, dy});
    edges.push_back({c1, dy});
    for (uint32_t i = 0; i < 8; ++i) {
      const VertexId dx = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kD);
      edges.push_back({c0, dx});
      edges.push_back({c1, dx});
    }
    for (uint32_t i = 0; i < 6; ++i) {
      const VertexId b = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kB);
      edges.push_back({a0, b});
      edges.push_back({b, c0});
      edges.push_back({b, c1});
      edges.push_back({b, dy});
    }
    for (uint32_t i = 0; i < 10; ++i) {
      const VertexId b = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kB);
      vlabels.push_back(kE);
      edges.push_back({b, b + 1});
    }
    for (uint32_t i = 0; i < 25; ++i) {
      const VertexId c = static_cast<VertexId>(vlabels.size());
      vlabels.push_back(kC);
      vlabels.push_back(kE);
      edges.push_back({c, c + 1});
    }
  }
  return testing::MakeGraph(false, vlabels, edges);
}

Graph HeteroDupPattern() {
  return testing::MakeGraph(false, {kB, kC, kD, kE},
                            {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
}

struct Totals {
  uint64_t search_nodes = 0;
  uint64_t intersect_elements = 0;
  uint64_t embeddings = 0;
  double seconds = 0.0;
};

Totals RunConfig(const CsceMatcher& matcher,
                 const std::vector<Graph>& patterns,
                 const PruneOptions& prune, uint32_t threads,
                 std::vector<std::vector<VertexId>>* rows_out) {
  Totals t;
  for (const Graph& pattern : patterns) {
    MatchOptions options;
    options.variant = MatchVariant::kEdgeInduced;
    options.time_limit_seconds = bench::TimeLimit();
    options.num_threads = threads;
    options.plan.prune = prune;
    MatchResult r;
    if (rows_out != nullptr) {
      std::vector<VertexId> flat;
      std::mutex mu;
      Status st = matcher.MatchWithCallback(
          pattern, options,
          [&](std::span<const VertexId> mapping) {
            std::lock_guard<std::mutex> lock(mu);
            flat.insert(flat.end(), mapping.begin(), mapping.end());
            return true;
          },
          &r);
      CSCE_CHECK(st.ok());
      const uint32_t width = pattern.NumVertices();
      for (size_t off = 0; off + width <= flat.size(); off += width) {
        rows_out->emplace_back(flat.begin() + off, flat.begin() + off + width);
      }
    } else {
      Status st = matcher.Match(pattern, options, &r);
      CSCE_CHECK(st.ok());
    }
    t.search_nodes += r.search_nodes;
    t.intersect_elements += r.intersect_elements;
    t.embeddings += r.embeddings;
    t.seconds += r.timed_out ? bench::TimeLimit() : r.total_seconds;
  }
  if (rows_out != nullptr) std::sort(rows_out->begin(), rows_out->end());
  return t;
}

void RunPanel(const char* name, const Ccsr& index,
              const std::vector<Graph>& patterns, bool crosscheck_rows,
              bench::BenchJson* json) {
  CsceMatcher matcher(&index);
  std::printf("%-12s %6s %14s %18s %10s %12s\n", name, "cfg", "search_nodes",
              "intersect_elems", "mean_s", "embeddings");

  std::vector<std::vector<VertexId>> want_rows;
  Totals off = RunConfig(matcher, patterns, PruneOptions{}, 1,
                         crosscheck_rows ? &want_rows : nullptr);
  for (const Config& config : Configs()) {
    std::vector<std::vector<VertexId>> rows;
    Totals t = RunConfig(matcher, patterns, config.prune, 1,
                         crosscheck_rows ? &rows : nullptr);
    bool identical = t.embeddings == off.embeddings;
    if (crosscheck_rows) {
      identical = identical && rows == want_rows;
      // The point of the exercise: pruning may change the work, never
      // the answer — at one thread or eight.
      std::vector<std::vector<VertexId>> rows8;
      Totals t8 = RunConfig(matcher, patterns, config.prune, 8, &rows8);
      identical = identical && t8.embeddings == off.embeddings &&
                  rows8 == want_rows;
      CSCE_CHECK(identical);
    }
    std::printf("%-12s %6s %14llu %18llu %10.4f %12llu%s\n", "",
                config.name,
                static_cast<unsigned long long>(t.search_nodes),
                static_cast<unsigned long long>(t.intersect_elements),
                t.seconds / patterns.size(),
                static_cast<unsigned long long>(t.embeddings),
                identical ? "" : "  MISMATCH");
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("panel", name);
    row.Set("config", config.name);
    row.Set("search_nodes", t.search_nodes);
    row.Set("intersect_elements", t.intersect_elements);
    row.Set("mean_seconds", t.seconds / patterns.size());
    row.Set("embeddings", t.embeddings);
    row.Set("identical_to_off", identical);
    json->AddRow(std::move(row));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace csce

int main() {
  using namespace csce;
  std::printf("Proactive pruning ablation (limit %.1fs per case)\n\n",
              bench::TimeLimit());
  bench::BenchJson json("prune");
  json.Config("time_limit_seconds", bench::TimeLimit());

  {
    const uint32_t copies = bench::QuickMode() ? 64 : 512;
    json.Config("hetero_dup_copies", copies);
    Ccsr index = Ccsr::Build(HeteroDupGraph(copies));
    std::vector<Graph> patterns = {HeteroDupPattern()};
    RunPanel("hetero-dup", index, patterns, /*crosscheck_rows=*/true, &json);
  }

  {
    Graph patent = datasets::Patent(18);
    Ccsr index = Ccsr::Build(patent);
    std::vector<Graph> patterns;
    Status st = SamplePatterns(patent, 5, PatternDensity::kDense,
                               bench::PatternsPerConfig(), 97, &patterns);
    CSCE_CHECK(st.ok());
    RunPanel("Patent-5", index, patterns, /*crosscheck_rows=*/false, &json);
  }

  std::printf("off = pruning disabled; aux/ree/lpi = one pass alone; all = "
              "the full stack. hetero-dup rows are cross-checked "
              "byte-identical to off at 1 and 8 threads.\n");
  return 0;
}
