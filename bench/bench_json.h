#ifndef CSCE_BENCH_BENCH_JSON_H_
#define CSCE_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/json.h"
#include "util/status.h"

namespace csce {
namespace bench {

/// Quick mode (CSCE_BENCH_QUICK=1): each bench trims itself to a
/// CI-sized subset — fewer panels, smaller graphs, fewer repeats — so
/// the bench-smoke job and BENCH_baseline.json regeneration finish in
/// seconds while still exercising the full measurement path.
inline bool QuickMode() {
  const char* env = std::getenv("CSCE_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Machine-readable mirror of a bench binary's printed tables.
///
/// Every bench_* binary owns one BenchJson named after itself, records
/// its configuration knobs and one JSON row per printed table row, and
/// writes BENCH_<name>.json on destruction (or an explicit Write).
/// Document schema, csce.bench.v1:
///
///   {"schema": "csce.bench.v1", "bench": "<name>", "quick": bool,
///    "config": {...}, "rows": [{...}, ...]}
///
/// The file goes to $CSCE_BENCH_JSON_DIR (default: the working
/// directory); CSCE_BENCH_JSON=0 disables writing entirely. Rows are
/// free-form objects — the schema constrains the envelope, not the
/// per-bench columns — so tests validate JSON well-formedness, the
/// envelope keys, and non-negativity of numeric values.
class BenchJson {
 public:
  explicit BenchJson(std::string name)
      : name_(std::move(name)),
        config_(obs::JsonValue::Object()),
        rows_(obs::JsonValue::Array()) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() {
    if (written_) return;
    if (Status st = Write(); !st.ok()) {
      std::fprintf(stderr, "bench json: %s\n", st.ToString().c_str());
    }
  }

  void Config(const std::string& key, obs::JsonValue value) {
    config_.Set(key, std::move(value));
  }

  void AddRow(obs::JsonValue row) { rows_.Append(std::move(row)); }

  size_t NumRows() const { return rows_.size(); }

  /// The assembled csce.bench.v1 document.
  obs::JsonValue ToJson() const {
    obs::JsonValue doc = obs::JsonValue::Object();
    doc.Set("schema", "csce.bench.v1");
    doc.Set("bench", name_);
    doc.Set("quick", QuickMode());
    doc.Set("config", config_);
    doc.Set("rows", rows_);
    return doc;
  }

  /// Writes BENCH_<name>.json (see class comment for destination).
  /// Idempotent: the destructor skips writing after an explicit call.
  Status Write() {
    written_ = true;
    const char* toggle = std::getenv("CSCE_BENCH_JSON");
    if (toggle != nullptr && toggle[0] == '0') return Status::OK();
    const char* dir = std::getenv("CSCE_BENCH_JSON_DIR");
    std::string path = dir != nullptr && dir[0] != '\0'
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      return Status::IOError("cannot open bench json: " + path);
    }
    std::string text = ToJson().Dump(1);
    text += "\n";
    size_t n = std::fwrite(text.data(), 1, text.size(), out);
    bool close_ok = std::fclose(out) == 0;
    if (n != text.size() || !close_ok) {
      return Status::IOError("cannot write bench json: " + path);
    }
    std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(),
                 rows_.size());
    return Status::OK();
  }

 private:
  std::string name_;
  obs::JsonValue config_;
  obs::JsonValue rows_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace csce

#endif  // CSCE_BENCH_BENCH_JSON_H_
