// Set-operation kernel microbenchmark: times every compiled-in kernel
// (scalar reference, SSE, AVX2) over a list-size x selectivity x skew
// grid, for both intersection and difference, and closes with an
// end-to-end Patent homomorphic count under each kernel. Each timed
// row double-checks the kernel's output length against the scalar
// reference, so the bench is also a coarse differential test.
//
// Environment knobs:
//   CSCE_INTERSECT_REPEATS   timed repetitions per cell (default 3)
//   CSCE_INTERSECT_LABELS    vertex labels of the Patent graph (default 18)
//   CSCE_INTERSECT_SIZE      end-to-end pattern vertices (default 6)
//   CSCE_INTERSECT_SEED     pattern sampling seed (default 42)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "engine/setops/setops.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace csce {
namespace {

uint32_t EnvOr(const char* name, uint32_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint32_t>(std::atoi(env)) : fallback;
}

std::vector<setops::Kernel> CompiledKernels() {
  std::vector<setops::Kernel> kernels = {setops::Kernel::kScalar};
  if (setops::KernelSupported(setops::Kernel::kSse)) {
    kernels.push_back(setops::Kernel::kSse);
  }
  if (setops::KernelSupported(setops::Kernel::kAvx2)) {
    kernels.push_back(setops::Kernel::kAvx2);
  }
  return kernels;
}

// Two sorted unique lists of sizes n and n*skew whose intersection is
// ~selectivity * n: elements are drawn from a shared pool so overlap
// is controlled, then each side is padded with disjoint private values.
struct ListPair {
  std::vector<VertexId> a;
  std::vector<VertexId> b;
};

ListPair MakeLists(Rng& rng, size_t n, double selectivity, size_t skew) {
  const size_t nb = n * skew;
  const size_t shared = static_cast<size_t>(selectivity * n);
  ListPair p;
  p.a.reserve(n);
  p.b.reserve(nb);
  // Stride-3 value space: slot 0 shared, slots 1/2 private to a/b, so
  // the lists interleave (worst case for block merges) yet the overlap
  // is exact.
  size_t taken_a = 0, taken_b = 0, taken_shared = 0;
  for (VertexId base = 0; taken_a < n || taken_b < nb; ++base) {
    if (taken_shared < shared && taken_a < n && taken_b < nb &&
        rng.Bernoulli(0.5)) {
      p.a.push_back(3 * base);
      p.b.push_back(3 * base);
      ++taken_a;
      ++taken_b;
      ++taken_shared;
      continue;
    }
    if (taken_a < n && rng.Bernoulli(0.5)) {
      p.a.push_back(3 * base + 1);
      ++taken_a;
    }
    if (taken_b < nb) {
      p.b.push_back(3 * base + 2);
      ++taken_b;
    }
  }
  return p;
}

using KernelCall = size_t (*)(setops::Kernel, std::span<const VertexId>,
                              std::span<const VertexId>, VertexId*);

size_t CallIntersect(setops::Kernel k, std::span<const VertexId> a,
                     std::span<const VertexId> b, VertexId* out) {
  return setops::IntersectWith(k, a, b, out);
}

size_t CallDifference(setops::Kernel k, std::span<const VertexId> a,
                      std::span<const VertexId> b, VertexId* out) {
  return setops::DifferenceWith(k, a, b, out);
}

// Best-of-`repeats` seconds for `iters` calls of `call`.
double TimeKernel(KernelCall call, setops::Kernel k, const ListPair& lists,
                  uint32_t repeats, size_t iters, VertexId* out,
                  size_t* checksum) {
  double best = 0.0;
  for (uint32_t r = 0; r < repeats; ++r) {
    size_t sink = 0;
    WallTimer timer;
    for (size_t i = 0; i < iters; ++i) {
      sink += call(k, lists.a, lists.b, out);
    }
    double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
    *checksum = sink;
  }
  return best;
}

}  // namespace

int Main() {
  const bool quick = bench::QuickMode();
  const uint32_t repeats = EnvOr("CSCE_INTERSECT_REPEATS", quick ? 2 : 3);
  const uint32_t labels = EnvOr("CSCE_INTERSECT_LABELS", 18);
  const uint32_t pattern_size = EnvOr("CSCE_INTERSECT_SIZE", 6);
  const uint32_t seed = EnvOr("CSCE_INTERSECT_SEED", 42);
  const std::vector<setops::Kernel> kernels = CompiledKernels();

  bench::BenchJson json("intersect");
  json.Config("repeats", repeats);
  json.Config("labels", labels);
  json.Config("pattern_size", pattern_size);
  json.Config("seed", seed);
  json.Config("active_kernel", setops::KernelName(setops::ActiveKernel()));

  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{1 << 10, 1 << 14}
            : std::vector<size_t>{1 << 8, 1 << 12, 1 << 16};
  const std::vector<double> selectivities =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.5, 0.9};
  const std::vector<size_t> skews =
      quick ? std::vector<size_t>{1} : std::vector<size_t>{1, 8, 64};
  // Enough total elements per cell to hide timer granularity.
  const size_t target_elems = quick ? (1u << 22) : (1u << 26);

  std::printf("Set-operation kernels (best of %u):\n", repeats);
  std::printf("%6s %10s %6s %5s %8s %12s %10s %8s\n", "op", "size", "sel",
              "skew", "kernel", "seconds", "Melem/s", "vs scal");
  bench::PrintRule(72);

  Rng rng(seed);
  struct Op {
    const char* name;
    KernelCall call;
  };
  const Op ops[] = {{"and", CallIntersect}, {"sub", CallDifference}};

  for (size_t n : sizes) {
    for (double sel : selectivities) {
      for (size_t skew : skews) {
        ListPair lists = MakeLists(rng, n, sel, skew);
        std::vector<VertexId> out(lists.a.size() + lists.b.size() +
                                  setops::kOutPad);
        const size_t iters =
            std::max<size_t>(1, target_elems / (n * (1 + skew)));
        for (const Op& op : ops) {
          double scalar_seconds = 0.0;
          size_t scalar_checksum = 0;
          for (setops::Kernel k : kernels) {
            size_t checksum = 0;
            double seconds = TimeKernel(op.call, k, lists, repeats, iters,
                                        out.data(), &checksum);
            if (k == setops::Kernel::kScalar) {
              scalar_seconds = seconds;
              scalar_checksum = checksum;
            } else {
              // Differential guard: same total result length as scalar.
              CSCE_CHECK(checksum == scalar_checksum)
                  << op.name << " result diverged on kernel "
                  << setops::KernelName(k);
            }
            const double total_elems =
                static_cast<double>(iters) * (lists.a.size() + lists.b.size());
            const double speedup =
                seconds > 0 ? scalar_seconds / seconds : 0.0;
            std::printf("%6s %10zu %6.2f %5zu %8s %12.6f %10.1f %7.2fx\n",
                        op.name, n, sel, skew, setops::KernelName(k), seconds,
                        total_elems / seconds / 1e6, speedup);
            obs::JsonValue row = obs::JsonValue::Object();
            row.Set("section", "kernel");
            row.Set("op", op.name);
            row.Set("size", static_cast<uint64_t>(n));
            row.Set("selectivity", sel);
            row.Set("skew", static_cast<uint64_t>(skew));
            row.Set("kernel", setops::KernelName(k));
            row.Set("seconds", seconds);
            row.Set("melems_per_sec", total_elems / seconds / 1e6);
            row.Set("speedup_vs_scalar", speedup);
            json.AddRow(std::move(row));
          }
        }
      }
    }
  }

  // End-to-end: intersection-heavy homomorphic counting on Patent,
  // same plan and patterns, only the dispatched kernel differs.
  bench::PrintRule(72);
  Graph data = datasets::Patent(labels);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);
  std::vector<Graph> patterns;
  Status st = SamplePatterns(data, pattern_size, PatternDensity::kSparse,
                             bench::PatternsPerConfig(), seed, &patterns);
  CSCE_CHECK(st.ok());

  const setops::Kernel original = setops::ActiveKernel();
  double scalar_seconds = 0.0;
  uint64_t scalar_embeddings = 0;
  for (setops::Kernel k : kernels) {
    setops::SetKernelForTesting(k);
    double best = 0.0;
    uint64_t embeddings = 0;
    for (uint32_t r = 0; r < repeats; ++r) {
      uint64_t total = 0;
      WallTimer timer;
      for (const Graph& p : patterns) {
        MatchOptions options;
        options.variant = MatchVariant::kHomomorphic;
        MatchResult result;
        st = matcher.Match(p, options, &result);
        CSCE_CHECK(st.ok());
        total += result.embeddings;
      }
      double s = timer.Seconds();
      if (r == 0 || s < best) best = s;
      embeddings = total;
    }
    if (k == setops::Kernel::kScalar) {
      scalar_seconds = best;
      scalar_embeddings = embeddings;
    }
    CSCE_CHECK(embeddings == scalar_embeddings)
        << "embedding count diverged on kernel " << setops::KernelName(k);
    const double speedup = best > 0 ? scalar_seconds / best : 0.0;
    std::printf("%6s %10s %6s %5s %8s %12.4f %10s %7.2fx  (%llu embeddings)\n",
                "hom", "patent", "-", "-", setops::KernelName(k), best, "-",
                speedup, static_cast<unsigned long long>(embeddings));
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("section", "end_to_end");
    row.Set("dataset", "patent");
    row.Set("kernel", setops::KernelName(k));
    row.Set("seconds", best);
    row.Set("embeddings", embeddings);
    row.Set("speedup_vs_scalar", speedup);
    json.AddRow(std::move(row));
  }
  setops::SetKernelForTesting(original);
  return 0;
}

}  // namespace csce

int main() { return csce::Main(); }
