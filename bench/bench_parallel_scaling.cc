// Parallel scaling of the morsel runtime: enumerate the same pattern
// workload at 1/2/4/8 threads and report per-thread-count time and
// speedup over serial, plus a concurrent-session (QueryRuntime)
// throughput row. Run on a multi-core machine: on a single hardware
// thread the workers time-slice one core and speedup is ~1x by
// construction (the hardware-threads column makes that visible).
//
// Environment knobs:
//   CSCE_BENCH_PATTERNS      patterns per workload (default 3)
//   CSCE_SCALING_SIZE        pattern vertices (default 8)
//   CSCE_SCALING_REPEATS     timed repetitions per config (default 3)
//   CSCE_SCALING_LABELS      vertex labels of the Patent graph (default 18)
//   CSCE_SCALING_SEED        pattern sampling seed (default 42)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "runtime/query_runtime.h"
#include "util/timer.h"

namespace csce {
namespace {

uint32_t EnvOr(const char* name, uint32_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint32_t>(std::atoi(env)) : fallback;
}

double RunWorkload(const CsceMatcher& matcher,
                   const std::vector<Graph>& patterns, uint32_t threads,
                   uint64_t* embeddings) {
  *embeddings = 0;
  WallTimer timer;
  for (const Graph& p : patterns) {
    MatchOptions options;
    options.variant = MatchVariant::kHomomorphic;
    options.num_threads = threads;
    MatchResult r;
    Status st = matcher.Match(p, options, &r);
    CSCE_CHECK(st.ok());
    *embeddings += r.embeddings;
  }
  return timer.Seconds();
}

}  // namespace

int Main() {
  const bool quick = bench::QuickMode();
  const uint32_t size = EnvOr("CSCE_SCALING_SIZE", quick ? 6 : 8);
  const uint32_t repeats = EnvOr("CSCE_SCALING_REPEATS", quick ? 1 : 3);
  const uint32_t labels = EnvOr("CSCE_SCALING_LABELS", 18);
  const uint32_t seed = EnvOr("CSCE_SCALING_SEED", 42);
  const uint32_t count = bench::PatternsPerConfig();

  bench::BenchJson json("parallel_scaling");
  json.Config("pattern_size", size);
  json.Config("repeats", repeats);
  json.Config("labels", labels);
  json.Config("seed", seed);
  json.Config("patterns", count);
  json.Config("hardware_threads", std::thread::hardware_concurrency());

  // Patent with few labels: 40k vertices, skewed degrees, and label
  // classes coarse enough that an 8-vertex homomorphic pattern does
  // seconds of real enumeration (Yeast/HPRD label counts are so fine
  // that these patterns finish in microseconds — no scaling signal).
  Graph data = datasets::Patent(labels);
  Ccsr gc = Ccsr::Build(data);
  CsceMatcher matcher(&gc);

  std::vector<Graph> patterns;
  Status st = SamplePatterns(data, size, PatternDensity::kSparse, count, seed,
                             &patterns);
  CSCE_CHECK(st.ok());

  std::printf("Parallel scaling: patent(%u), %u hom patterns of %u vertices, "
              "best of %u runs (%u hardware threads)\n",
              labels, count, size, repeats,
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %10s %14s\n", "threads", "seconds", "speedup",
              "embeddings");
  bench::PrintRule(48);

  double serial_seconds = 0.0;
  uint64_t serial_embeddings = 0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    double best = 0.0;
    uint64_t embeddings = 0;
    for (uint32_t r = 0; r < repeats; ++r) {
      uint64_t e = 0;
      double s = RunWorkload(matcher, patterns, threads, &e);
      if (r == 0 || s < best) best = s;
      if (r == 0) {
        embeddings = e;
      } else {
        CSCE_CHECK(e == embeddings);  // determinism across runs
      }
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_embeddings = embeddings;
    }
    CSCE_CHECK(embeddings == serial_embeddings);  // parallel == serial
    std::printf("%8u %12.4f %9.2fx %14llu\n", threads, best,
                serial_seconds / best,
                static_cast<unsigned long long>(embeddings));
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("mode", "morsel");
    row.Set("threads", threads);
    row.Set("seconds", best);
    row.Set("speedup", serial_seconds / best);
    row.Set("embeddings", embeddings);
    json.AddRow(std::move(row));
  }

  // Inter-query parallelism: the whole workload as one concurrent batch.
  bench::PrintRule(48);
  for (uint32_t threads : {1u, 4u}) {
    RuntimeOptions runtime_options;
    runtime_options.worker_threads = threads;
    QueryRuntime runtime(&gc, runtime_options);
    std::vector<QueryJob> jobs;
    for (const Graph& p : patterns) {
      QueryJob job;
      job.pattern = p;
      job.options.variant = MatchVariant::kHomomorphic;
      jobs.push_back(job);
    }
    std::vector<QueryOutcome> outcomes;
    WallTimer timer;
    st = runtime.RunBatch(jobs, &outcomes);
    CSCE_CHECK(st.ok());
    double seconds = timer.Seconds();
    uint64_t embeddings = 0;
    for (const QueryOutcome& o : outcomes) {
      CSCE_CHECK(o.status.ok());
      embeddings += o.result.embeddings;
    }
    CSCE_CHECK(embeddings == serial_embeddings);
    std::printf("session %ux: %.4fs (%.2fx vs serial loop), "
                "cache hits=%llu misses=%llu\n",
                threads, seconds, serial_seconds / seconds,
                static_cast<unsigned long long>(
                    runtime.metrics().cluster_cache_hits),
                static_cast<unsigned long long>(
                    runtime.metrics().cluster_cache_misses));
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("mode", "session");
    row.Set("threads", threads);
    row.Set("seconds", seconds);
    row.Set("speedup", serial_seconds / seconds);
    row.Set("embeddings", embeddings);
    row.Set("cache_hits", runtime.metrics().cluster_cache_hits);
    row.Set("cache_misses", runtime.metrics().cluster_cache_misses);
    json.AddRow(std::move(row));
  }
  return 0;
}

}  // namespace csce

int main() { return csce::Main(); }
