// Micro-kernels (google-benchmark): the hot primitives behind the
// engine — sorted-set intersection/difference, RLE codec, CSR neighbor
// lookup in both layouts, and cluster lookup vs raw adjacency probing.

#include <benchmark/benchmark.h>

#include <vector>

#include "ccsr/ccsr.h"
#include "ccsr/compressed_row.h"
#include "ccsr/csr.h"
#include "engine/candidates.h"
#include "gen/random_graph.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace csce {
namespace {

std::vector<VertexId> SortedRandomSet(Rng& rng, size_t n, uint32_t universe) {
  std::vector<VertexId> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.Uniform(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_IntersectBalanced(benchmark::State& state) {
  Rng rng(1);
  auto a = SortedRandomSet(rng, state.range(0), 1 << 20);
  auto b = SortedRandomSet(rng, state.range(0), 1 << 20);
  std::vector<VertexId> out;
  for (auto _ : state) {
    IntersectSorted(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced)->Range(1 << 8, 1 << 14);

void BM_IntersectGalloping(benchmark::State& state) {
  Rng rng(2);
  auto small_set = SortedRandomSet(rng, 64, 1 << 20);
  auto large_set = SortedRandomSet(rng, state.range(0), 1 << 20);
  std::vector<VertexId> out;
  for (auto _ : state) {
    IntersectSorted(small_set, large_set, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectGalloping)->Range(1 << 10, 1 << 18);

void BM_DifferenceInPlace(benchmark::State& state) {
  Rng rng(3);
  auto base = SortedRandomSet(rng, state.range(0), 1 << 20);
  auto remove = SortedRandomSet(rng, state.range(0) / 4, 1 << 20);
  for (auto _ : state) {
    std::vector<VertexId> acc = base;
    DifferenceInPlace(&acc, remove);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_DifferenceInPlace)->Range(1 << 8, 1 << 14);

void BM_RleCompress(benchmark::State& state) {
  // A row-index array with the sparsity typical of a cluster.
  Rng rng(4);
  std::vector<uint64_t> row(state.range(0));
  uint64_t value = 0;
  for (auto& r : row) {
    if (rng.Bernoulli(0.02)) value += 1 + rng.Uniform(4);
    r = value;
  }
  for (auto _ : state) {
    CompressedRowIndex c = CompressedRowIndex::Compress(row);
    benchmark::DoNotOptimize(c.num_runs());
  }
  state.SetItemsProcessed(state.iterations() * row.size());
}
BENCHMARK(BM_RleCompress)->Range(1 << 12, 1 << 18);

void BM_RleDecompress(benchmark::State& state) {
  Rng rng(5);
  std::vector<uint64_t> row(state.range(0));
  uint64_t value = 0;
  for (auto& r : row) {
    if (rng.Bernoulli(0.02)) value += 1 + rng.Uniform(4);
    r = value;
  }
  CompressedRowIndex c = CompressedRowIndex::Compress(row);
  for (auto _ : state) {
    auto out = c.Decompress();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * row.size());
}
BENCHMARK(BM_RleDecompress)->Range(1 << 12, 1 << 18);

CsrIndex MakeCsr(uint32_t vertices, uint32_t arcs, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < arcs; ++i) {
    VertexId a = static_cast<VertexId>(rng.Uniform(vertices));
    VertexId b = static_cast<VertexId>(rng.Uniform(vertices));
    if (a != b) edges.push_back({a, b, 0});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return CsrIndex::FromArcs(vertices, edges);
}

void BM_CsrNeighborsDense(benchmark::State& state) {
  CsrIndex csr = MakeCsr(1 << 12, 1 << 15, 6);  // dense layout
  Rng rng(7);
  for (auto _ : state) {
    auto nbrs = csr.Neighbors(static_cast<VertexId>(rng.Uniform(1 << 12)));
    benchmark::DoNotOptimize(nbrs.data());
  }
}
BENCHMARK(BM_CsrNeighborsDense);

void BM_CsrNeighborsSparse(benchmark::State& state) {
  CsrIndex csr = MakeCsr(1 << 20, 1 << 10, 8);  // sparse layout
  Rng rng(9);
  for (auto _ : state) {
    auto nbrs = csr.Neighbors(static_cast<VertexId>(rng.Uniform(1 << 20)));
    benchmark::DoNotOptimize(nbrs.data());
  }
}
BENCHMARK(BM_CsrNeighborsSparse);

void BM_CcsrBuild(benchmark::State& state) {
  LabelConfig labels;
  labels.vertex_labels = 16;
  Graph g = ErdosRenyi(10000, static_cast<uint64_t>(state.range(0)), false,
                       labels, 11);
  for (auto _ : state) {
    Ccsr gc = Ccsr::Build(g);
    benchmark::DoNotOptimize(gc.NumClusters());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_CcsrBuild)->Range(1 << 14, 1 << 17);

void BM_ClusterHasArcVsGraphHasEdge(benchmark::State& state) {
  LabelConfig labels;
  labels.vertex_labels = 4;
  Graph g = ErdosRenyi(20000, 200000, false, labels, 12);
  Ccsr gc = Ccsr::Build(g);
  QueryClusters qc;
  GraphBuilder pb(false);
  pb.AddVertex(0);
  pb.AddVertex(1);
  pb.AddEdge(0, 1);
  Graph pattern;
  CSCE_CHECK(pb.Build(&pattern).ok());
  CSCE_CHECK(
      ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc).ok());
  const ClusterView* view = qc.Find(ClusterId::Undirected(0, 1, 0));
  if (view == nullptr) {
    state.SkipWithError("cluster missing");
    return;
  }
  Rng rng(13);
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.Uniform(20000));
    VertexId b = static_cast<VertexId>(rng.Uniform(20000));
    benchmark::DoNotOptimize(view->HasArc(a, b));
    benchmark::DoNotOptimize(g.HasEdge(a, b));
  }
}
BENCHMARK(BM_ClusterHasArcVsGraphHasEdge);

}  // namespace
}  // namespace csce

BENCHMARK_MAIN();
