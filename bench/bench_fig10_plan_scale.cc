// Fig. 10: plan-generation scalability — time and peak memory of the
// full optimization pipeline (ReadCSR + GCF + BuildDAG + LDSF) for
// patterns up to 2000 vertices on a Patent-like graph with 2000 vertex
// labels, for all three variants.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "util/memory.h"
#include "util/timer.h"

int main() {
  using namespace csce;
  std::printf("Fig. 10 analogue: plan generation time/memory vs pattern "
              "size (Patent-like graph, 2000 labels)\n\n");

  bench::BenchJson json("fig10_plan_scale");
  json.Config("labels", 2000);
  Graph patent = datasets::Patent(2000);
  WallTimer build_timer;
  Ccsr gc = Ccsr::Build(patent);
  std::printf("offline CCSR build: %.2fs, %zu clusters\n\n",
              build_timer.Seconds(), gc.NumClusters());
  Planner planner(&gc);

  std::printf("%-8s", "size");
  for (const char* v : {"E plan(s)", "V plan(s)", "H plan(s)"}) {
    std::printf(" %12s", v);
  }
  std::printf(" %14s\n", "peak RSS (GB)");
  std::vector<uint32_t> sizes = {8u, 32u, 128u, 512u, 1000u, 2000u};
  if (bench::QuickMode()) sizes = {8u, 32u, 128u};
  for (uint32_t size : sizes) {
    Rng rng(size + 17);
    Graph pattern;
    Status st =
        SamplePattern(patent, size, PatternDensity::kDense, rng, &pattern);
    if (!st.ok()) {
      std::printf("%-8u (sampling failed: %s)\n", size,
                  st.ToString().c_str());
      continue;
    }
    std::printf("%-8u", size);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("pattern_size", size);
    const char* keys[] = {"edge_plan_seconds", "vertex_plan_seconds",
                          "hom_plan_seconds"};
    int k = 0;
    for (auto variant :
         {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
          MatchVariant::kHomomorphic}) {
      WallTimer timer;
      QueryClusters qc;
      Status read = ReadClusters(gc, pattern, variant, &qc);
      CSCE_CHECK(read.ok());
      Plan plan;
      Status planned =
          planner.MakePlan(pattern, variant, PlanOptions{}, &plan);
      CSCE_CHECK(planned.ok());
      double seconds = timer.Seconds();
      std::printf(" %12.3f", seconds);
      row.Set(keys[k++], seconds);
    }
    double rss_gb =
        static_cast<double>(PeakRssBytes()) / (1024.0 * 1024 * 1024);
    row.Set("peak_rss_gb", rss_gb);
    json.AddRow(std::move(row));
    std::printf(" %14.2f\n", rss_gb);
  }
  std::printf("\nExpected shape (Finding 10): plans for 2000-vertex "
              "patterns complete within the budget; homomorphism (no "
              "injectivity bookkeeping) is the cheapest.\n");
  return 0;
}
