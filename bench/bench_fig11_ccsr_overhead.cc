// Fig. 11: CCSR overhead — cluster reading/decompression time and
// memory when the label count of the data graph grows (20 / 200 / 2000
// labels, one trajectory each) and the pattern size varies.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "ccsr/ccsr.h"
#include "ccsr/cluster_cache.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "util/timer.h"

int main() {
  using namespace csce;
  std::printf("Fig. 11 analogue: CCSR read overhead vs labels and pattern "
              "size (Patent-like graph, edge-induced)\n\n");
  std::printf("%-8s %-10s %12s %12s %14s %12s\n", "labels", "size",
              "clusters", "read(ms)", "decomp(MB)", "built(s)");

  bench::BenchJson json("fig11_ccsr_overhead");
  std::vector<uint32_t> label_counts = {20u, 200u, 2000u};
  std::vector<uint32_t> sizes = {3u, 4u, 8u, 32u, 128u, 512u, 2000u};
  if (bench::QuickMode()) {
    label_counts = {20u, 200u};
    sizes = {4u, 8u, 32u};
  }
  for (uint32_t labels : label_counts) {
    Graph patent = datasets::Patent(labels);
    WallTimer build_timer;
    Ccsr gc = Ccsr::Build(patent);
    double build_seconds = build_timer.Seconds();
    for (uint32_t size : sizes) {
      Rng rng(labels * 1000 + size);
      Graph pattern;
      Status st =
          SamplePattern(patent, size, PatternDensity::kDense, rng, &pattern);
      if (!st.ok()) continue;
      WallTimer timer;
      QueryClusters qc;
      Status read =
          ReadClusters(gc, pattern, MatchVariant::kEdgeInduced, &qc);
      CSCE_CHECK(read.ok());
      double read_ms = timer.Millis();
      double decomp_mb =
          static_cast<double>(qc.DecompressedBytes()) / (1 << 20);
      std::printf("%-8u %-10u %12zu %12.3f %14.2f %12.2f\n", labels, size,
                  qc.NumViews(), read_ms, decomp_mb, build_seconds);
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("labels", labels);
      row.Set("pattern_size", size);
      row.Set("clusters", static_cast<uint64_t>(qc.NumViews()));
      row.Set("read_ms", read_ms);
      row.Set("decompressed_mb", decomp_mb);
      row.Set("build_seconds", build_seconds);
      json.AddRow(std::move(row));
    }
  }
  std::printf("\nExpected shape (Finding 11): overhead grows with the label "
              "count and pattern size but stays acceptable.\n");

  // Extension (the paper's future-work item): a session-level cluster
  // cache amortizes the decompression across queries.
  std::printf("\nCluster-cache extension: cold vs warm read time, "
              "Patent-like graph with 200 labels\n");
  {
    Graph patent = datasets::Patent(200);
    Ccsr gc = Ccsr::Build(patent);
    ClusterCache cache(&gc);
    std::printf("%-8s %14s %14s %10s\n", "size", "cold(ms)", "warm(ms)",
                "speedup");
    for (uint32_t size : {8u, 32u, 128u, 512u}) {
      Rng rng(424200 + size);
      Graph pattern;
      if (!SamplePattern(patent, size, PatternDensity::kDense, rng, &pattern)
               .ok()) {
        continue;
      }
      WallTimer cold_timer;
      QueryClusters cold;
      CSCE_CHECK(ReadClustersCached(cache, pattern,
                                    MatchVariant::kEdgeInduced, &cold)
                     .ok());
      double cold_ms = cold_timer.Millis();
      WallTimer warm_timer;
      QueryClusters warm;
      CSCE_CHECK(ReadClustersCached(cache, pattern,
                                    MatchVariant::kEdgeInduced, &warm)
                     .ok());
      double warm_ms = warm_timer.Millis();
      std::printf("%-8u %14.3f %14.3f %9.1fx\n", size, cold_ms, warm_ms,
                  warm_ms > 0 ? cold_ms / warm_ms : 0.0);
    }
    std::printf("cache: %zu views, %.2f MB, %llu hits / %llu misses\n",
                cache.CachedViews(),
                static_cast<double>(cache.CachedBytes()) / (1 << 20),
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()));
  }
  return 0;
}
