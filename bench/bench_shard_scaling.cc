// Sharded-execution scaling: enumerate the same pattern workload on
// the single-node engine and on in-process shard clusters of 1/2/4
// shards, and report per-config time, speedup over single-node, and
// the distributed round-loop shape (EXTEND rounds, cross-shard tasks
// routed). Embedding counts are CHECKed equal across every config —
// a bench run doubles as a distributed-equals-serial cross-check.
//
// The 1-shard row isolates the wire-protocol + coordinator overhead
// (it routes nothing); the 2/4-shard rows add real boundary traffic.
// Workers here are threads, not processes, so rows measure protocol
// and partition cost, not interconnect cost. Each shard count is
// measured three times — over in-memory loopback queues, AF_UNIX
// socketpairs, and real TCP loopback sockets — and the tcp row
// reports its overhead vs the unix row (the same FdTransport syscall
// path) so transport regressions are visible in the JSON.
//
// Environment knobs:
//   CSCE_BENCH_PATTERNS      patterns per workload (default 3)
//   CSCE_SHARD_SIZE          pattern vertices (default 6)
//   CSCE_SHARD_REPEATS       timed repetitions per config (default 3)
//   CSCE_SHARD_LABELS        vertex labels of the Patent graph (default 18)
//   CSCE_SHARD_SEED          pattern sampling seed (default 42)
//   CSCE_SHARD_THREADS       worker threads per shard (default 2)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "shard/coordinator.h"
#include "util/timer.h"

namespace csce {
namespace {

uint32_t EnvOr(const char* name, uint32_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint32_t>(std::atoi(env)) : fallback;
}

struct WorkloadStats {
  double seconds = 0.0;
  uint64_t embeddings = 0;
  uint64_t rounds = 0;
  uint64_t tasks_routed = 0;
};

WorkloadStats RunSingleNode(const CsceMatcher& matcher,
                            const std::vector<Graph>& patterns) {
  WorkloadStats stats;
  WallTimer timer;
  for (const Graph& p : patterns) {
    MatchOptions options;
    options.variant = MatchVariant::kEdgeInduced;
    MatchResult r;
    Status st = matcher.Match(p, options, &r);
    CSCE_CHECK(st.ok());
    stats.embeddings += r.embeddings;
  }
  stats.seconds = timer.Seconds();
  return stats;
}

WorkloadStats RunSharded(shard::ShardCoordinator& coordinator,
                         const std::vector<Graph>& patterns) {
  WorkloadStats stats;
  WallTimer timer;
  for (const Graph& p : patterns) {
    shard::CoordinatorOptions options;
    options.variant = MatchVariant::kEdgeInduced;
    shard::ShardResult r;
    Status st = coordinator.Execute(p, options, &r);
    CSCE_CHECK(st.ok());
    stats.embeddings += r.embeddings;
    stats.rounds += r.rounds;
    stats.tasks_routed += r.tasks_routed;
  }
  stats.seconds = timer.Seconds();
  return stats;
}

}  // namespace

int Main() {
  const bool quick = bench::QuickMode();
  const uint32_t size = EnvOr("CSCE_SHARD_SIZE", quick ? 5 : 6);
  const uint32_t repeats = EnvOr("CSCE_SHARD_REPEATS", quick ? 1 : 3);
  const uint32_t labels = EnvOr("CSCE_SHARD_LABELS", 18);
  const uint32_t seed = EnvOr("CSCE_SHARD_SEED", 42);
  const uint32_t threads = EnvOr("CSCE_SHARD_THREADS", quick ? 1 : 2);
  const uint32_t count = bench::PatternsPerConfig();

  bench::BenchJson json("shard_scaling");
  json.Config("pattern_size", size);
  json.Config("repeats", repeats);
  json.Config("labels", labels);
  json.Config("seed", seed);
  json.Config("patterns", count);
  json.Config("threads_per_worker", threads);
  json.Config("hardware_threads", std::thread::hardware_concurrency());

  Graph data = datasets::Patent(labels);
  Ccsr full = Ccsr::Build(data);
  CsceMatcher matcher(&full);

  std::vector<Graph> patterns;
  Status st = SamplePatterns(data, size, PatternDensity::kSparse, count, seed,
                             &patterns);
  CSCE_CHECK(st.ok());

  std::printf("Shard scaling: patent(%u), %u edge patterns of %u vertices, "
              "%u threads/worker, best of %u runs\n",
              labels, count, size, threads, repeats);
  std::printf("%12s %12s %10s %14s %8s %14s\n", "config", "seconds",
              "speedup", "embeddings", "rounds", "tasks_routed");
  bench::PrintRule(76);

  WorkloadStats single;
  for (uint32_t r = 0; r < repeats; ++r) {
    WorkloadStats s = RunSingleNode(matcher, patterns);
    if (r == 0 || s.seconds < single.seconds) single = s;
  }
  std::printf("%12s %12.4f %9.2fx %14llu %8s %14s\n", "single",
              single.seconds, 1.0,
              static_cast<unsigned long long>(single.embeddings), "-", "-");
  {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("mode", "single");
    row.Set("shards", 0);
    row.Set("seconds", single.seconds);
    row.Set("speedup", 1.0);
    row.Set("embeddings", single.embeddings);
    json.AddRow(std::move(row));
  }

  struct TransportRow {
    shard::ClusterTransport transport;
    const char* name;
    const char* suffix;
  };
  const TransportRow kTransports[] = {
      {shard::ClusterTransport::kLoopback, "loopback", ""},
      {shard::ClusterTransport::kUnix, "unix", "-unix"},
      {shard::ClusterTransport::kTcp, "tcp", "-tcp"},
  };
  for (uint32_t shards : {1u, 2u, 4u}) {
    double unix_seconds = 0.0;
    for (const TransportRow& tr : kTransports) {
      const bool tcp = tr.transport == shard::ClusterTransport::kTcp;
      shard::InProcessClusterOptions opts;
      opts.transport = tr.transport;
      std::unique_ptr<shard::InProcessCluster> cluster;
      st = shard::InProcessCluster::Create(data, &full, shards,
                                           shard::PartitionStrategy::kHash,
                                           threads, opts, &cluster);
      CSCE_CHECK(st.ok());
      WorkloadStats best;
      for (uint32_t r = 0; r < repeats; ++r) {
        WorkloadStats s = RunSharded(cluster->coordinator(), patterns);
        CSCE_CHECK(s.embeddings == single.embeddings);  // sharded == serial
        if (r == 0 || s.seconds < best.seconds) best = s;
      }
      if (tr.transport == shard::ClusterTransport::kUnix) {
        unix_seconds = best.seconds;
      }
      // Quick-mode workloads can finish in ~0 ms; a ratio against such
      // a denominator is noise (or inf/NaN). Skip the ratio — print "-"
      // and leave the JSON key out — instead of emitting a bogus value.
      constexpr double kMinRatioDenom = 1e-4;  // 0.1 ms
      const bool have_speedup = best.seconds >= kMinRatioDenom;
      const bool have_tcp_overhead = tcp && unix_seconds >= kMinRatioDenom;
      const double tcp_overhead =
          have_tcp_overhead ? best.seconds / unix_seconds : 0.0;
      char config[24];
      std::snprintf(config, sizeof(config), "%u-shard%s", shards, tr.suffix);
      char speedup_str[24];
      if (have_speedup) {
        std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx",
                      single.seconds / best.seconds);
      } else {
        std::snprintf(speedup_str, sizeof(speedup_str), "-");
      }
      std::printf("%12s %12.4f %10s %14llu %8llu %14llu", config,
                  best.seconds, speedup_str,
                  static_cast<unsigned long long>(best.embeddings),
                  static_cast<unsigned long long>(best.rounds),
                  static_cast<unsigned long long>(best.tasks_routed));
      if (tcp) {
        if (have_tcp_overhead) {
          std::printf("   tcp/unix %.2fx", tcp_overhead);
        } else {
          std::printf("   tcp/unix -");
        }
      }
      std::printf("\n");
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("mode", "sharded");
      row.Set("transport", tr.name);
      row.Set("shards", shards);
      row.Set("seconds", best.seconds);
      if (have_speedup) row.Set("speedup", single.seconds / best.seconds);
      row.Set("embeddings", best.embeddings);
      row.Set("rounds", best.rounds);
      row.Set("tasks_routed", best.tasks_routed);
      if (have_tcp_overhead) row.Set("tcp_overhead", tcp_overhead);
      json.AddRow(std::move(row));
    }
  }
  return 0;
}

}  // namespace csce

int main() { return csce::Main(); }
