// Fig. 12: SCE occurrence — the share of pattern vertices whose
// candidates are independent of at least one earlier vertex under the
// final plan, and the share attributable to clustering, per variant and
// pattern size (Patent-like graph).

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "ccsr/ccsr.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "plan/planner.h"

int main() {
  using namespace csce;
  std::printf("Fig. 12 analogue: SCE occurrence by pattern size "
              "(Patent-like graph, %% of pattern vertices)\n\n");

  Graph patent = datasets::Patent(20);
  Ccsr gc = Ccsr::Build(patent);
  Planner planner(&gc);
  // Vertex-induced SCE exists only where the "(x,y)*-clusters" between
  // a non-adjacent pattern pair are empty (Algorithm 2 line 8). With
  // only 20 labels every label pair occurs in the data, so the effect
  // is measured on the 200-label variant, where label pairs are sparse.
  Graph patent200 = datasets::Patent(200);
  Ccsr gc200 = Ccsr::Build(patent200);
  Planner planner200(&gc200);

  bench::BenchJson json("fig12_sce_occurrence");
  std::printf("%-8s | %10s %12s | %10s | %12s %12s\n", "size", "E sce%",
              "E cluster%", "H sce%", "V@200 dns%", "V@200 sps%");
  std::vector<uint32_t> sizes = {8u, 16u, 32u, 64u, 128u, 200u};
  if (bench::QuickMode()) sizes = {8u, 16u, 32u};
  for (uint32_t size : sizes) {
    double sums[4] = {0, 0, 0, 0};
    double v_sparse = 0;
    const int kPatterns = bench::QuickMode() ? 2 : 5;
    int sampled = 0;
    for (int i = 0; i < kPatterns; ++i) {
      Rng rng(size * 91 + i);
      Graph pattern;
      if (!SamplePattern(patent, size, PatternDensity::kDense, rng, &pattern)
               .ok()) {
        continue;
      }
      ++sampled;
      for (auto variant :
           {MatchVariant::kEdgeInduced, MatchVariant::kHomomorphic}) {
        Plan plan;
        Status st = planner.MakePlan(pattern, variant, PlanOptions{}, &plan);
        CSCE_CHECK(st.ok());
        double pct = 100.0 * plan.sce.sce_vertices /
                     plan.sce.pattern_vertices;
        if (variant == MatchVariant::kEdgeInduced) {
          sums[0] += pct;
          sums[1] += 100.0 * plan.sce.cluster_attributed /
                     plan.sce.pattern_vertices;
        } else {
          sums[2] += pct;
        }
      }
      // Vertex-induced, on the label-rich graph (dense and sparse
      // patterns).
      for (bool sparse_pattern : {false, true}) {
        Graph vp;
        Rng rng2(size * 97 + i + (sparse_pattern ? 1000 : 0));
        if (!SamplePattern(patent200, size,
                           sparse_pattern ? PatternDensity::kSparse
                                          : PatternDensity::kDense,
                           rng2, &vp)
                 .ok()) {
          continue;
        }
        Plan plan;
        Status st = planner200.MakePlan(vp, MatchVariant::kVertexInduced,
                                        PlanOptions{}, &plan);
        CSCE_CHECK(st.ok());
        double pct =
            100.0 * plan.sce.sce_vertices / plan.sce.pattern_vertices;
        if (sparse_pattern) {
          v_sparse += pct;
        } else {
          sums[3] += pct;
        }
      }
    }
    if (sampled == 0) continue;
    std::printf("%-8u | %9.1f%% %11.1f%% | %9.1f%% | %11.1f%% %11.1f%%\n",
                size, sums[0] / sampled, sums[1] / sampled,
                sums[2] / sampled, sums[3] / sampled, v_sparse / sampled);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("pattern_size", size);
    row.Set("edge_sce_pct", sums[0] / sampled);
    row.Set("edge_cluster_pct", sums[1] / sampled);
    row.Set("hom_sce_pct", sums[2] / sampled);
    row.Set("vertex200_dense_pct", sums[3] / sampled);
    row.Set("vertex200_sparse_pct", v_sparse / sampled);
    json.AddRow(std::move(row));
  }
  std::printf("\nExpected shape (Finding 12): roughly half the vertices "
              "show SCE for E/H; vertex-induced SCE is small and entirely "
              "cluster-driven; the cluster share shrinks as patterns "
              "grow.\n");
  return 0;
}
