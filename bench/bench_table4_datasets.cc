// Table IV: dataset statistics of the synthetic analogues, in the same
// columns as the paper (direction, vertices, edges, labels, average
// degree, max in/out degree), plus the CCSR footprint of each graph.

#include <cstdio>

#include "bench/bench_json.h"
#include "ccsr/ccsr.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"
#include "util/timer.h"

int main() {
  using namespace csce;
  std::printf("Table IV analogue: dataset statistics (scaled-down synthetic "
              "shapes; see DESIGN.md)\n\n");
  std::printf("%s %12s %10s\n", StatsHeader().c_str(), "clusters",
              "ccsr(s)");
  bench::BenchJson json("table4_datasets");
  for (auto& [name, graph] : datasets::AllTable4()) {
    GraphStats stats = ComputeStats(graph);
    WallTimer timer;
    Ccsr ccsr = Ccsr::Build(graph);
    double build = timer.Seconds();
    std::printf("%s %12zu %9.3fs\n", FormatStatsRow(name, stats).c_str(),
                ccsr.NumClusters(), build);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("dataset", name);
    row.Set("directed", stats.directed);
    row.Set("vertices", stats.vertex_count);
    row.Set("edges", stats.edge_count);
    row.Set("labels", stats.label_count);
    row.Set("avg_degree", stats.average_degree);
    row.Set("clusters", static_cast<uint64_t>(ccsr.NumClusters()));
    row.Set("ccsr_build_seconds", build);
    json.AddRow(std::move(row));
  }
  return 0;
}
