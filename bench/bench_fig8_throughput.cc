// Fig. 8: edge-induced throughput (embeddings per second) on the road
// network, per algorithm and pattern size. Timed-out runs report the
// throughput achieved up to the limit.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "gen/datasets.h"

int main() {
  using namespace csce;
  using bench::AlgoOutcome;
  using bench::Runners;

  Graph road = datasets::RoadCa();
  Runners runners(&road);
  std::printf("Fig. 8 analogue: edge-induced throughput on RoadCA "
              "(embeddings/s; limit %.1fs)\n\n",
              bench::TimeLimit());

  using RunFn = std::function<AlgoOutcome(const Graph&)>;
  struct Algo {
    const char* name;
    RunFn run;
  };
  const MatchVariant kV = MatchVariant::kEdgeInduced;
  std::vector<Algo> algos = {
      {"CSCE", [&](const Graph& p) { return runners.Csce(p, kV); }},
      {"BT-FSP", [&](const Graph& p) { return runners.BtFsp(p, kV); }},
      {"WCOJ-RM", [&](const Graph& p) { return runners.Join(p, kV); }},
      {"GraphPi", [&](const Graph& p) { return runners.GraphPi(p, kV); }},
  };

  std::printf("%-6s", "size");
  for (const Algo& a : algos) std::printf(" %14s", a.name);
  std::printf("\n");
  bench::PrintRule(70);
  for (uint32_t size : {8u, 16u, 24u, 32u}) {
    std::vector<Graph> patterns;
    Status st = SamplePatterns(road, size, PatternDensity::kDense,
                               bench::PatternsPerConfig(), size * 13 + 5,
                               &patterns);
    if (!st.ok()) continue;
    std::printf("%-6u", size);
    for (const Algo& a : algos) {
      double total_time = 0;
      uint64_t total_embeddings = 0;
      bool supported = true;
      for (const Graph& p : patterns) {
        AlgoOutcome o = a.run(p);
        supported = supported && o.supported;
        total_time += o.total_seconds;
        total_embeddings += o.embeddings;
      }
      if (!supported) {
        std::printf(" %14s", "n/a");
      } else {
        std::printf(" %14.0f",
                    total_time > 0 ? total_embeddings / total_time : 0.0);
      }
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (Finding 8): throughput decreases with "
              "pattern size; CSCE stays on top.\n");
  return 0;
}
