// Fig. 8: edge-induced throughput (embeddings per second) on the road
// network, per algorithm and pattern size. Timed-out runs report the
// throughput achieved up to the limit.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"

int main() {
  using namespace csce;
  using bench::AlgoOutcome;
  using bench::Runners;

  bench::BenchJson json("fig8_throughput");
  json.Config("time_limit_seconds", bench::TimeLimit());
  json.Config("patterns_per_config", bench::PatternsPerConfig());
  Graph road = datasets::RoadCa();
  Runners runners(&road);
  std::printf("Fig. 8 analogue: edge-induced throughput on RoadCA "
              "(embeddings/s; limit %.1fs)\n\n",
              bench::TimeLimit());

  using RunFn = std::function<AlgoOutcome(const Graph&)>;
  struct Algo {
    const char* name;
    RunFn run;
  };
  const MatchVariant kV = MatchVariant::kEdgeInduced;
  std::vector<Algo> algos = {
      {"CSCE", [&](const Graph& p) { return runners.Csce(p, kV); }},
      {"BT-FSP", [&](const Graph& p) { return runners.BtFsp(p, kV); }},
      {"WCOJ-RM", [&](const Graph& p) { return runners.Join(p, kV); }},
      {"GraphPi", [&](const Graph& p) { return runners.GraphPi(p, kV); }},
  };

  std::printf("%-6s", "size");
  for (const Algo& a : algos) std::printf(" %14s", a.name);
  std::printf("\n");
  bench::PrintRule(70);
  std::vector<uint32_t> sizes = {8u, 16u, 24u, 32u};
  if (bench::QuickMode()) sizes = {8u, 16u};
  for (uint32_t size : sizes) {
    std::vector<Graph> patterns;
    Status st = SamplePatterns(road, size, PatternDensity::kDense,
                               bench::PatternsPerConfig(), size * 13 + 5,
                               &patterns);
    if (!st.ok()) continue;
    std::printf("%-6u", size);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("pattern_size", size);
    obs::JsonValue cells = obs::JsonValue::Object();
    for (const Algo& a : algos) {
      double total_time = 0;
      uint64_t total_embeddings = 0;
      bool supported = true;
      for (const Graph& p : patterns) {
        AlgoOutcome o = a.run(p);
        supported = supported && o.supported;
        total_time += o.total_seconds;
        total_embeddings += o.embeddings;
      }
      obs::JsonValue c = obs::JsonValue::Object();
      c.Set("supported", supported);
      if (!supported) {
        std::printf(" %14s", "n/a");
      } else {
        double thruput = total_time > 0 ? total_embeddings / total_time : 0.0;
        std::printf(" %14.0f", thruput);
        c.Set("throughput", thruput);
        c.Set("embeddings", total_embeddings);
      }
      cells.Set(a.name, std::move(c));
    }
    row.Set("algorithms", std::move(cells));
    json.AddRow(std::move(row));
    std::printf("\n");
  }
  std::printf("\nExpected shape (Finding 8): throughput decreases with "
              "pattern size; CSCE stays on top.\n");
  return 0;
}
