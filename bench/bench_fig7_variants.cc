// Fig. 7: edge-induced vs vertex-induced on the road network —
// (a) number of embeddings, (b) total time, (c) throughput
// (embeddings per second), per pattern size.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"

int main() {
  using namespace csce;
  using bench::Runners;

  bench::BenchJson json("fig7_variants");
  json.Config("time_limit_seconds", bench::TimeLimit());
  json.Config("patterns_per_config", bench::PatternsPerConfig());
  Graph road = datasets::RoadCa();
  Runners runners(&road);
  std::printf("Fig. 7 analogue: edge- vs vertex-induced on RoadCA "
              "(limit %.1fs, %u patterns per size)\n\n",
              bench::TimeLimit(), bench::PatternsPerConfig());
  std::printf("%-6s | %14s %10s %12s | %14s %10s %12s\n", "size",
              "E embeddings", "E time", "E thruput", "V embeddings",
              "V time", "V thruput");
  bench::PrintRule(100);

  std::vector<uint32_t> sizes = {8u, 16u, 24u, 32u};
  if (bench::QuickMode()) sizes = {8u, 16u};
  for (uint32_t size : sizes) {
    std::vector<Graph> patterns;
    Status st = SamplePatterns(road, size, PatternDensity::kDense,
                               bench::PatternsPerConfig(), size * 13 + 5,
                               &patterns);
    if (!st.ok()) {
      std::printf("%-6u   (sampling failed)\n", size);
      continue;
    }
    auto cell = [&](MatchVariant variant) {
      return bench::Average(patterns, [&](const Graph& p) {
        return runners.Csce(p, variant);
      });
    };
    auto e = cell(MatchVariant::kEdgeInduced);
    auto v = cell(MatchVariant::kVertexInduced);
    auto throughput = [](const bench::AveragedCell& c) {
      return c.mean_seconds > 0
                 ? static_cast<double>(c.total_embeddings) /
                       (c.mean_seconds * bench::PatternsPerConfig())
                 : 0.0;
    };
    std::printf("%-6u | %14llu %9.4fs %12.0f | %14llu %9.4fs %12.0f\n",
                size, static_cast<unsigned long long>(e.total_embeddings),
                e.mean_seconds, throughput(e),
                static_cast<unsigned long long>(v.total_embeddings),
                v.mean_seconds, throughput(v));
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("pattern_size", size);
    auto variant_cell = [&](const bench::AveragedCell& c) {
      obs::JsonValue cell = obs::JsonValue::Object();
      cell.Set("embeddings", c.total_embeddings);
      cell.Set("mean_seconds", c.mean_seconds);
      cell.Set("throughput", throughput(c));
      return cell;
    };
    row.Set("edge", variant_cell(e));
    row.Set("vertex", variant_cell(v));
    json.AddRow(std::move(row));
  }
  std::printf("\nExpected shape (Finding 6): neither variant dominates in "
              "time; edge-induced has the higher throughput.\n");
  return 0;
}
