#ifndef CSCE_BENCH_BENCH_UTIL_H_
#define CSCE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "baselines/backtracking.h"
#include "baselines/graphpi_like.h"
#include "baselines/join.h"
#include "baselines/vf2.h"
#include "bench/bench_json.h"
#include "ccsr/ccsr.h"
#include "engine/matcher.h"
#include "gen/pattern_gen.h"
#include "graph/graph.h"
#include "util/logging.h"

namespace csce {
namespace bench {

/// Per-case time limit in seconds. Override with CSCE_BENCH_TIME_LIMIT
/// to trade fidelity for wall time (the paper uses 10^4 s; the default
/// here keeps every binary comfortably under a minute or two, and
/// quick mode under a few seconds).
inline double TimeLimit() {
  const char* env = std::getenv("CSCE_BENCH_TIME_LIMIT");
  if (env != nullptr) return std::atof(env);
  return QuickMode() ? 0.5 : 2.0;
}

/// Patterns averaged per configuration (the paper uses 10).
inline uint32_t PatternsPerConfig() {
  const char* env = std::getenv("CSCE_BENCH_PATTERNS");
  if (env != nullptr) return static_cast<uint32_t>(std::atoi(env));
  return QuickMode() ? 2 : 3;
}

struct AlgoOutcome {
  std::string name;
  bool supported = false;
  bool timed_out = false;
  double total_seconds = 0.0;
  uint64_t embeddings = 0;
};

/// All matchers wired to one data graph. Construction builds the CCSR
/// index once (the offline stage).
class Runners {
 public:
  explicit Runners(const Graph* g)
      : graph_(g), ccsr_(Ccsr::Build(*g)), csce_(&ccsr_), bt_(g), join_(g),
        vf2_(g), graphpi_(g) {}

  const Ccsr& ccsr() const { return ccsr_; }

  AlgoOutcome Csce(const Graph& pattern, MatchVariant variant) const {
    MatchOptions options;
    options.variant = variant;
    options.time_limit_seconds = TimeLimit();
    MatchResult r;
    Status st = csce_.Match(pattern, options, &r);
    CSCE_CHECK(st.ok());
    return {"CSCE", true, r.timed_out,
            r.timed_out ? TimeLimit() : r.total_seconds, r.embeddings};
  }

  /// DAF/VEQ/GuP stand-in: backtracking + NLF + failing-set pruning.
  AlgoOutcome BtFsp(const Graph& pattern, MatchVariant variant) const {
    BaselineOptions options;
    options.variant = variant;
    options.time_limit_seconds = TimeLimit();
    options.use_fsp = true;
    BaselineResult r;
    Status st = bt_.Match(pattern, options, &r);
    CSCE_CHECK(st.ok());
    return {"BT-FSP(VEQ-like)", true, r.timed_out,
            r.timed_out ? TimeLimit() : r.total_seconds, r.embeddings};
  }

  /// RapidMatch/Graphflow stand-in: per-query relations + WCOJ.
  AlgoOutcome Join(const Graph& pattern, MatchVariant variant) const {
    BaselineOptions options;
    options.variant = variant;
    options.time_limit_seconds = TimeLimit();
    BaselineResult r;
    Status st = join_.Match(pattern, options, &r);
    if (!st.ok()) return {"WCOJ(RM-like)", false, false, 0.0, 0};
    return {"WCOJ(RM-like)", true, r.timed_out,
            r.timed_out ? TimeLimit() : r.total_seconds, r.embeddings};
  }

  AlgoOutcome Vf2(const Graph& pattern, MatchVariant variant) const {
    BaselineOptions options;
    options.variant = variant;
    options.time_limit_seconds = TimeLimit();
    BaselineResult r;
    Status st = vf2_.Match(pattern, options, &r);
    if (!st.ok()) return {"VF3-like", false, false, 0.0, 0};
    return {"VF3-like", true, r.timed_out,
            r.timed_out ? TimeLimit() : r.total_seconds, r.embeddings};
  }

  AlgoOutcome GraphPi(const Graph& pattern, MatchVariant variant) const {
    // Symmetry breaking only helps unlabeled patterns; the original
    // does not support labels at all.
    if (graph_->VertexLabelCount() > 0 ||
        variant != MatchVariant::kEdgeInduced) {
      return {"SymBrk(GraphPi-like)", false, false, 0.0, 0};
    }
    BaselineOptions options;
    options.variant = variant;
    options.time_limit_seconds = TimeLimit();
    BaselineResult r;
    Status st = graphpi_.Match(pattern, options, &r);
    if (!st.ok()) return {"SymBrk(GraphPi-like)", false, false, 0.0, 0};
    return {"SymBrk(GraphPi-like)", true, r.timed_out,
            r.timed_out ? TimeLimit() : r.total_seconds, r.embeddings};
  }

  const CsceMatcher& csce() const { return csce_; }
  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  Ccsr ccsr_;
  CsceMatcher csce_;
  BacktrackingMatcher bt_;
  JoinMatcher join_;
  Vf2Matcher vf2_;
  GraphPiLikeMatcher graphpi_;
};

/// Averages outcomes over a pattern set; timeouts count at the limit
/// (the paper's convention).
struct AveragedCell {
  double mean_seconds = 0.0;
  uint64_t total_embeddings = 0;
  uint32_t timeouts = 0;
  bool supported = true;
};

template <typename RunFn>
AveragedCell Average(const std::vector<Graph>& patterns, RunFn&& run) {
  AveragedCell cell;
  for (const Graph& p : patterns) {
    AlgoOutcome outcome = run(p);
    if (!outcome.supported) {
      cell.supported = false;
      return cell;
    }
    cell.mean_seconds += outcome.total_seconds;
    cell.total_embeddings += outcome.embeddings;
    cell.timeouts += outcome.timed_out ? 1 : 0;
  }
  if (!patterns.empty()) cell.mean_seconds /= patterns.size();
  return cell;
}

inline std::string FormatCell(const AveragedCell& cell) {
  if (!cell.supported) return "n/a";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f%s", cell.mean_seconds,
                cell.timeouts > 0 ? "*" : "");
  return buf;
}

inline void PrintRule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace csce

#endif  // CSCE_BENCH_BENCH_UTIL_H_
