// Out-of-core CCSR: what the mmap-backed v2 artifact buys and costs.
//
// Three panels over the Patent graph:
//  * cold open — LoadCcsrFromFile on a v1 stream artifact (full parse
//    into owned memory) vs MmapCcsr::Open on the v2 artifact (header +
//    directory only). The v2 open must be >= 10x faster whenever the
//    stream load is large enough to time reliably — this is the
//    format's reason to exist.
//  * query throughput + RSS — the same pattern workload enumerated over
//    the in-memory index, the uncapped mapping, and the mapping under a
//    paging-advice memory cap; reports seconds, queries/s and resident
//    set sizes around each phase (RSS rows are indicative: phases share
//    one process, and DONTNEED is a hint, not a guarantee).
//  * sharded equality — in-process clusters of 1/2/4 shards x 1/8
//    worker threads, every worker mmap-loading its own v2 shard
//    artifact from disk; embedding counts are CHECKed equal to the
//    single-node in-memory run.
//
// Environment knobs:
//   CSCE_OOC_LABELS     vertex labels of the Patent graph (default 18)
//   CSCE_OOC_REPEATS    cold-open repetitions, best-of (default 5)
//   CSCE_OOC_CAP_BYTES  memory-cap panel budget (default 1 MiB)
//   CSCE_BENCH_PATTERNS patterns per workload (bench_util default)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "ccsr/ccsr_io.h"
#include "ccsr/ccsr_mmap.h"
#include "gen/datasets.h"
#include "gen/pattern_gen.h"
#include "shard/coordinator.h"
#include "shard/shard_plan.h"
#include "util/memory.h"
#include "util/timer.h"

namespace csce {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : fallback;
}

std::string TempBase() {
  const char* dir = std::getenv("TMPDIR");
  std::string base = dir != nullptr && dir[0] != '\0' ? dir : "/tmp";
  return base + "/bench_outofcore." + std::to_string(::getpid());
}

struct Workload {
  double seconds = 0.0;
  uint64_t embeddings = 0;
};

Workload RunWorkload(const Ccsr& index, const std::vector<Graph>& patterns,
                     uint32_t threads) {
  CsceMatcher matcher(&index);
  Workload w;
  WallTimer timer;
  for (const Graph& p : patterns) {
    MatchOptions options;
    options.num_threads = threads;
    MatchResult r;
    Status st = matcher.Match(p, options, &r);
    CSCE_CHECK(st.ok());
    w.embeddings += r.embeddings;
  }
  w.seconds = timer.Seconds();
  return w;
}

}  // namespace

int Main() {
  const bool quick = bench::QuickMode();
  const uint32_t labels =
      static_cast<uint32_t>(EnvOr("CSCE_OOC_LABELS", 18));
  const uint32_t repeats =
      static_cast<uint32_t>(EnvOr("CSCE_OOC_REPEATS", quick ? 3 : 5));
  const uint64_t cap_bytes = EnvOr("CSCE_OOC_CAP_BYTES", 1ull << 20);
  const uint32_t count = bench::PatternsPerConfig();
  const uint32_t size = quick ? 4 : 5;

  bench::BenchJson json("outofcore");
  json.Config("labels", labels);
  json.Config("repeats", repeats);
  json.Config("cap_bytes", cap_bytes);
  json.Config("patterns", count);
  json.Config("pattern_size", size);

  Graph data = datasets::Patent(labels);
  Ccsr full = Ccsr::Build(data);

  const std::string base = TempBase();
  const std::string v1_path = base + ".v1.ccsr";
  const std::string v2_path = base + ".v2.ccsr";
  CSCE_CHECK(SaveCcsrToFile(full, v1_path).ok());
  CSCE_CHECK(SaveCcsrToFileV2(full, v2_path).ok());

  std::vector<Graph> patterns;
  Status st = SamplePatterns(data, size, PatternDensity::kSparse, count,
                             /*seed=*/42, &patterns);
  CSCE_CHECK(st.ok());

  std::printf("Out-of-core CCSR: patent(%u), v1=%s v2=%s\n", labels,
              v1_path.c_str(), v2_path.c_str());

  // --- Panel 1: cold open ------------------------------------------------
  double stream_seconds = 0.0;
  for (uint32_t r = 0; r < repeats; ++r) {
    WallTimer t;
    Ccsr loaded;
    CSCE_CHECK(LoadCcsrFromFile(v1_path, &loaded).ok());
    double s = t.Seconds();
    if (r == 0 || s < stream_seconds) stream_seconds = s;
  }
  double open_seconds = 0.0;
  for (uint32_t r = 0; r < repeats; ++r) {
    WallTimer t;
    std::unique_ptr<MmapCcsr> mapped;
    CSCE_CHECK(MmapCcsr::Open(v2_path, &mapped).ok());
    double s = t.Seconds();
    if (r == 0 || s < open_seconds) open_seconds = s;
  }
  // Ratio floor guard: below ~1 ms the stream load is timer noise and
  // the ratio says nothing — report the raw times and skip the claim.
  constexpr double kMinRatioDenom = 1e-3;
  const bool have_ratio = stream_seconds >= kMinRatioDenom;
  const double cold_speedup = have_ratio ? stream_seconds / open_seconds : 0.0;
  std::printf("cold open: v1 stream-load %.3f ms, v2 mmap open %.3f ms",
              stream_seconds * 1e3, open_seconds * 1e3);
  if (have_ratio) {
    std::printf("  (%.0fx)\n", cold_speedup);
    CSCE_CHECK(cold_speedup >= 10.0);  // the acceptance bar
  } else {
    std::printf("  (ratio skipped: load under timer floor)\n");
  }
  {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("phase", "cold_open");
    row.Set("v1_stream_seconds", stream_seconds);
    row.Set("v2_open_seconds", open_seconds);
    if (have_ratio) row.Set("speedup", cold_speedup);
    json.AddRow(std::move(row));
  }

  // --- Panel 2: throughput + RSS ----------------------------------------
  struct Mode {
    const char* name;
    bool mmap;
    uint64_t cap;
  };
  const Mode kModes[] = {
      {"in_memory", false, 0},
      {"mmap", true, 0},
      {"mmap_capped", true, cap_bytes},
  };
  uint64_t want_embeddings = 0;
  bool have_want = false;
  std::printf("%14s %12s %10s %14s %14s\n", "mode", "seconds", "q/s",
              "embeddings", "rss_bytes");
  bench::PrintRule(70);
  for (const Mode& mode : kModes) {
    std::unique_ptr<MmapCcsr> mapped;
    const Ccsr* index = &full;
    if (mode.mmap) {
      MmapCcsr::Options mopts;
      mopts.memory_cap_bytes = mode.cap;
      CSCE_CHECK(MmapCcsr::Open(v2_path, mopts, &mapped).ok());
      index = &mapped->ccsr();
    }
    Workload w = RunWorkload(*index, patterns, /*threads=*/1);
    if (!have_want) {
      want_embeddings = w.embeddings;
      have_want = true;
    }
    CSCE_CHECK(w.embeddings == want_embeddings);  // out-of-core == in-memory
    const uint64_t rss = CurrentRssBytes();
    const bool have_qps = w.seconds >= kMinRatioDenom;
    std::printf("%14s %12.4f %10s %14llu %14llu\n", mode.name, w.seconds,
                have_qps
                    ? std::to_string(
                          static_cast<uint64_t>(patterns.size() / w.seconds))
                          .c_str()
                    : "-",
                static_cast<unsigned long long>(w.embeddings),
                static_cast<unsigned long long>(rss));
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("phase", "throughput");
    row.Set("mode", mode.name);
    row.Set("seconds", w.seconds);
    if (have_qps) row.Set("queries_per_second", patterns.size() / w.seconds);
    row.Set("embeddings", w.embeddings);
    row.Set("rss_bytes", rss);
    if (mode.mmap) row.Set("cap_bytes", mode.cap);
    json.AddRow(std::move(row));
  }

  // --- Panel 3: sharded mmap equality ------------------------------------
  std::vector<uint32_t> shard_counts = quick ? std::vector<uint32_t>{1u, 2u}
                                             : std::vector<uint32_t>{1u, 2u,
                                                                     4u};
  std::vector<uint32_t> thread_counts =
      quick ? std::vector<uint32_t>{1u} : std::vector<uint32_t>{1u, 8u};
  std::vector<std::string> artifacts;
  for (uint32_t shards : shard_counts) {
    // On-disk shard artifacts for this shard count (v2, so workers can
    // mmap them), same layout csce_build --shards=N writes.
    const std::string shard_base = base + ".s" + std::to_string(shards);
    shard::ShardPlanOptions popts;
    popts.num_shards = shards;
    popts.strategy = shard::PartitionStrategy::kHash;
    shard::ShardPlan plan = shard::ShardPlan::Build(data, popts);
    CSCE_CHECK(plan.SaveToFile(shard::ShardPlan::PlanPath(shard_base)).ok());
    artifacts.push_back(shard::ShardPlan::PlanPath(shard_base));
    for (uint32_t s = 0; s < shards; ++s) {
      Graph shard_graph;
      CSCE_CHECK(plan.ExtractShard(data, s, &shard_graph).ok());
      Ccsr shard_ccsr = Ccsr::Build(shard_graph);
      const std::string path = shard::ShardPlan::ShardCcsrPath(shard_base, s);
      CSCE_CHECK(SaveCcsrToFileV2(shard_ccsr, path).ok());
      artifacts.push_back(path);
    }
    for (uint32_t threads : thread_counts) {
      shard::InProcessClusterOptions opts;
      opts.load_base_path = shard_base;
      opts.use_mmap = true;
      opts.memory_cap_bytes = cap_bytes;
      std::unique_ptr<shard::InProcessCluster> cluster;
      CSCE_CHECK(shard::InProcessCluster::Create(
                     data, &full, shards, shard::PartitionStrategy::kHash,
                     threads, opts, &cluster)
                     .ok());
      uint64_t embeddings = 0;
      WallTimer timer;
      for (const Graph& p : patterns) {
        shard::CoordinatorOptions copts;
        shard::ShardResult r;
        CSCE_CHECK(cluster->coordinator().Execute(p, copts, &r).ok());
        embeddings += r.embeddings;
      }
      const double seconds = timer.Seconds();
      CSCE_CHECK(embeddings == want_embeddings);  // sharded mmap == serial
      std::printf("mmap shards=%u threads=%u: %.4fs embeddings=%llu (equal)\n",
                  shards, threads, seconds,
                  static_cast<unsigned long long>(embeddings));
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("phase", "shard_equality");
      row.Set("shards", shards);
      row.Set("threads", threads);
      row.Set("seconds", seconds);
      row.Set("embeddings", embeddings);
      json.AddRow(std::move(row));
    }
  }

  json.Config("peak_rss_bytes", PeakRssBytes());
  std::printf("peak_rss_bytes=%llu\n",
              static_cast<unsigned long long>(PeakRssBytes()));

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  for (const std::string& path : artifacts) std::remove(path.c_str());
  return 0;
}

}  // namespace csce

int main() { return csce::Main(); }
