// Fig. 6: total time (read + plan + enumerate) per algorithm across
// datasets, variants and pattern sizes. One panel per (dataset,
// variant); rows are pattern configurations, columns are algorithms,
// cells are mean seconds over the pattern set ('*' marks timeouts at
// the limit, 'n/a' unsupported).

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"

namespace csce {
namespace {

using bench::AlgoOutcome;
using bench::Average;
using bench::BenchJson;
using bench::FormatCell;
using bench::Runners;

struct Panel {
  const char* title;
  Graph graph;
  MatchVariant variant;
  std::vector<uint32_t> sizes;
  PatternDensity density;
  /// When > 0, sample complex-like patterns with at least this average
  /// degree (MIPS-complex workloads) instead of plain walks.
  double min_avg_degree = 0.0;
};

void RunPanel(const Panel& panel, BenchJson* json) {
  Runners runners(&panel.graph);
  std::printf("\n(%s) %s\n", panel.title, VariantName(panel.variant));
  bench::PrintRule();
  std::printf("%-10s", "size");
  using RunFn = std::function<AlgoOutcome(const Graph&)>;
  struct Algo {
    const char* header;
    RunFn run;
  };
  std::vector<Algo> algos = {
      {"CSCE",
       [&](const Graph& p) { return runners.Csce(p, panel.variant); }},
      {"BT-FSP", [&](const Graph& p) { return runners.BtFsp(p, panel.variant); }},
      {"WCOJ-RM", [&](const Graph& p) { return runners.Join(p, panel.variant); }},
      {"VF3like", [&](const Graph& p) { return runners.Vf2(p, panel.variant); }},
      {"GraphPi", [&](const Graph& p) { return runners.GraphPi(p, panel.variant); }},
  };
  for (const Algo& a : algos) std::printf(" %12s", a.header);
  std::printf(" %14s\n", "embeddings");
  bench::PrintRule();
  for (uint32_t size : panel.sizes) {
    std::vector<Graph> patterns;
    Status st =
        panel.min_avg_degree > 0
            ? SampleDensePatterns(panel.graph, size, panel.min_avg_degree,
                                  bench::PatternsPerConfig(),
                                  /*seed=*/size * 7 + 1, &patterns)
            : SamplePatterns(panel.graph, size, panel.density,
                             bench::PatternsPerConfig(),
                             /*seed=*/size * 7 + 1, &patterns);
    if (!st.ok()) {
      std::printf("%-10u   (sampling failed: %s)\n", size,
                  st.ToString().c_str());
      continue;
    }
    std::printf("%-10u", size);
    uint64_t embeddings = 0;
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("panel", panel.title);
    row.Set("variant", VariantName(panel.variant));
    row.Set("pattern_size", size);
    obs::JsonValue cells = obs::JsonValue::Object();
    for (const Algo& a : algos) {
      auto cell = Average(patterns, a.run);
      if (a.header[0] == 'C') embeddings = cell.total_embeddings;
      std::printf(" %12s", FormatCell(cell).c_str());
      obs::JsonValue c = obs::JsonValue::Object();
      c.Set("supported", cell.supported);
      if (cell.supported) {
        c.Set("mean_seconds", cell.mean_seconds);
        c.Set("timeouts", cell.timeouts);
      }
      cells.Set(a.header, std::move(c));
    }
    row.Set("algorithms", std::move(cells));
    row.Set("embeddings", embeddings);
    json->AddRow(std::move(row));
    std::printf(" %14llu\n", static_cast<unsigned long long>(embeddings));
  }
}

}  // namespace
}  // namespace csce

int main() {
  using namespace csce;
  std::printf("Fig. 6 analogue: total time in seconds per algorithm "
              "(limit %.1fs, %u patterns per row)\n",
              bench::TimeLimit(), bench::PatternsPerConfig());

  BenchJson json("fig6_total_time");
  json.Config("time_limit_seconds", bench::TimeLimit());
  json.Config("patterns_per_config", bench::PatternsPerConfig());

  std::vector<Panel> panels;
  if (bench::QuickMode()) {
    // CI-sized subset on generated Patent-style data: one labeled
    // heterogeneous graph, both induced variants, small patterns.
    panels.push_back({"q: Patent(18)", datasets::Patent(18),
                      MatchVariant::kEdgeInduced,
                      {4, 5}, PatternDensity::kDense});
    panels.push_back({"q: Patent(18)", datasets::Patent(18),
                      MatchVariant::kVertexInduced,
                      {4}, PatternDensity::kDense});
    for (const Panel& panel : panels) RunPanel(panel, &json);
    return 0;
  }
  panels.push_back({"a: DIP", datasets::Dip(), MatchVariant::kEdgeInduced,
                    {4, 8, 9, 12}, PatternDensity::kDense,
                    /*min_avg_degree=*/3.0});
  panels.push_back({"b: DIP", datasets::Dip(), MatchVariant::kVertexInduced,
                    {4, 8, 9, 12}, PatternDensity::kDense,
                    /*min_avg_degree=*/3.0});
  panels.push_back({"c: RoadCA", datasets::RoadCa(),
                    MatchVariant::kEdgeInduced,
                    {8, 16, 32}, PatternDensity::kDense});
  panels.push_back({"d: RoadCA", datasets::RoadCa(),
                    MatchVariant::kVertexInduced,
                    {8, 16, 32}, PatternDensity::kDense});
  panels.push_back({"e: Human dense", datasets::Human(),
                    MatchVariant::kEdgeInduced,
                    {4, 8, 12}, PatternDensity::kDense});
  panels.push_back({"g: Yeast dense", datasets::Yeast(),
                    MatchVariant::kEdgeInduced,
                    {8, 16, 32}, PatternDensity::kDense});
  panels.push_back({"h: Yeast sparse", datasets::Yeast(),
                    MatchVariant::kEdgeInduced,
                    {8, 16}, PatternDensity::kSparse});
  panels.push_back({"i: HPRD dense", datasets::Hprd(),
                    MatchVariant::kEdgeInduced,
                    {8, 16, 32}, PatternDensity::kDense});
  panels.push_back({"k: Orkut", datasets::Orkut(),
                    MatchVariant::kEdgeInduced,
                    {8, 12}, PatternDensity::kDense});
  panels.push_back({"l: LiveJournal", datasets::LiveJournal(),
                    MatchVariant::kHomomorphic,
                    {4, 8, 10, 12}, PatternDensity::kSparse});
  panels.push_back({"m: Subcategory", datasets::Subcategory(),
                    MatchVariant::kHomomorphic,
                    {4, 8, 12}, PatternDensity::kSparse});
  panels.push_back({"n: Subcategory", datasets::Subcategory(),
                    MatchVariant::kVertexInduced,
                    {4, 8, 12}, PatternDensity::kDense});

  for (const Panel& panel : panels) RunPanel(panel, &json);
  std::printf("\nExpected shape (paper Finding 1): CSCE fastest on large "
              "patterns, up to two orders of magnitude.\n");
  return 0;
}
