// Fig. 14: less effective scenarios — (a) symmetry breaking's benefit
// on small patterns vs its plan-cost explosion on larger ones (DIP,
// edge-induced); (b) throughput vs pattern density.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "gen/datasets.h"
#include "graph/graph_builder.h"
#include "plan/symmetry.h"

int main() {
  using namespace csce;
  using bench::AlgoOutcome;
  using bench::Runners;

  Graph dip = datasets::Dip();
  Runners runners(&dip);
  const MatchVariant kV = MatchVariant::kEdgeInduced;

  // Symmetric patterns are where symmetry breaking can help — and
  // where enumerating the automorphism group explodes (|Aut(K_n)|=n!).
  std::printf("Fig. 14(a) analogue: symmetry breaking on DIP with "
              "homogeneous symmetric patterns (edge-induced, limit "
              "%.1fs)\n\n",
              bench::TimeLimit());
  std::printf("%-12s %10s %12s %12s %12s %14s\n", "pattern", "|Aut|",
              "CSCE(s)", "GraphPi(s)", "BT-FSP(s)", "sym plan(s)");
  struct Symmetric {
    const char* name;
    Graph pattern;
  };
  auto clique = [](uint32_t n) {
    GraphBuilder b(false);
    b.AddVertices(n, kNoLabel);
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId c = a + 1; c < n; ++c) b.AddEdge(a, c);
    }
    Graph g;
    CSCE_CHECK(b.Build(&g).ok());
    return g;
  };
  auto cycle = [](uint32_t n) {
    GraphBuilder b(false);
    b.AddVertices(n, kNoLabel);
    for (VertexId v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
    Graph g;
    CSCE_CHECK(b.Build(&g).ok());
    return g;
  };
  bench::BenchJson json("fig14_less_effective");
  json.Config("time_limit_seconds", bench::TimeLimit());
  std::vector<Symmetric> symmetric;
  symmetric.push_back({"cycle-4", cycle(4)});
  symmetric.push_back({"cycle-5", cycle(5)});
  symmetric.push_back({"clique-3", clique(3)});
  symmetric.push_back({"clique-4", clique(4)});
  symmetric.push_back({"clique-5", clique(5)});
  if (!bench::QuickMode()) {
    symmetric.push_back({"clique-8", clique(8)});
    symmetric.push_back({"clique-9", clique(9)});
    symmetric.push_back({"clique-10", clique(10)});
  }
  for (const Symmetric& s : symmetric) {
    SymmetryInfo info = ComputeSymmetryBreaking(s.pattern);
    double csce_s = runners.Csce(s.pattern, kV).total_seconds;
    double graphpi_s = runners.GraphPi(s.pattern, kV).total_seconds;
    double btfsp_s = runners.BtFsp(s.pattern, kV).total_seconds;
    std::printf("%-12s %10llu %12.4f %12.4f %12.4f %14.4f\n", s.name,
                static_cast<unsigned long long>(info.automorphism_count),
                csce_s, graphpi_s, btfsp_s, info.generation_seconds);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("panel", "symmetry");
    row.Set("pattern", s.name);
    row.Set("automorphisms", info.automorphism_count);
    row.Set("csce_seconds", csce_s);
    row.Set("graphpi_seconds", graphpi_s);
    row.Set("btfsp_seconds", btfsp_s);
    row.Set("symmetry_plan_seconds", info.generation_seconds);
    json.AddRow(std::move(row));
  }
  std::printf("\nExpected shape (Finding 2): the symmetry plan cost "
              "explodes beyond ~8 unlabeled vertices while its benefit "
              "stays marginal.\n");

  std::printf("\nFig. 14(b) analogue: throughput vs pattern density on DIP "
              "(edge-induced)\n\n");
  std::printf("%-6s %-8s %16s %16s\n", "size", "density", "CSCE emb/s",
              "BT-FSP emb/s");
  std::vector<uint32_t> sizes = {8u, 12u, 16u, 20u};
  if (bench::QuickMode()) sizes = {8u, 12u};
  for (uint32_t size : sizes) {
    for (auto density : {PatternDensity::kSparse, PatternDensity::kDense}) {
      std::vector<Graph> patterns;
      Status st = SamplePatterns(dip, size, density,
                                 bench::PatternsPerConfig(), size * 11 + 1,
                                 &patterns);
      if (!st.ok()) continue;
      double csce_time = 0;
      double bt_time = 0;
      uint64_t csce_emb = 0;
      uint64_t bt_emb = 0;
      for (const Graph& p : patterns) {
        AlgoOutcome c = runners.Csce(p, kV);
        AlgoOutcome b = runners.BtFsp(p, kV);
        csce_time += c.total_seconds;
        csce_emb += c.embeddings;
        bt_time += b.total_seconds;
        bt_emb += b.embeddings;
      }
      std::printf("%-6u %-8s %16.0f %16.0f\n", size,
                  density == PatternDensity::kDense ? "dense" : "sparse",
                  csce_time > 0 ? csce_emb / csce_time : 0.0,
                  bt_time > 0 ? bt_emb / bt_time : 0.0);
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("panel", "density");
      row.Set("pattern_size", size);
      row.Set("density",
              density == PatternDensity::kDense ? "dense" : "sparse");
      row.Set("csce_throughput", csce_time > 0 ? csce_emb / csce_time : 0.0);
      row.Set("btfsp_throughput", bt_time > 0 ? bt_emb / bt_time : 0.0);
      json.AddRow(std::move(row));
    }
  }
  std::printf("\nExpected shape: throughput drops on denser patterns for "
              "every method, CSCE stays ahead.\n");
  return 0;
}
