// Table III: supported SM variants, label kinds, edge directions and
// tested pattern sizes for every algorithm in this repository. The
// capability rows are verified live by probing each matcher with tiny
// inputs rather than hard-coded.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "graph/graph_builder.h"

namespace csce {
namespace {

Graph TinyData(bool directed) {
  GraphBuilder b(directed);
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g;
  CSCE_CHECK(b.Build(&g).ok());
  return g;
}

Graph TinyPattern(bool directed) {
  GraphBuilder b(directed);
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  Graph g;
  CSCE_CHECK(b.Build(&g).ok());
  return g;
}

struct Row {
  const char* name;
  std::string variants;
  const char* vlabels;
  const char* elabels;
  const char* directions;
  const char* max_pattern;
};

}  // namespace
}  // namespace csce

int main() {
  using namespace csce;
  using bench::Runners;

  Graph data = TinyData(false);
  Graph pattern = TinyPattern(false);
  Runners runners(&data);

  auto probe = [&](auto&& fn) {
    std::string supported;
    struct {
      MatchVariant v;
      const char* tag;
    } variants[] = {{MatchVariant::kEdgeInduced, "E"},
                    {MatchVariant::kHomomorphic, "H"},
                    {MatchVariant::kVertexInduced, "V"}};
    for (const auto& [v, tag] : variants) {
      if (fn(pattern, v).supported) {
        if (!supported.empty()) supported += ",";
        supported += tag;
      }
    }
    return supported;
  };

  Row rows[] = {
      {"SymBrk(GraphPi-like)",
       probe([&](const Graph& p, MatchVariant v) {
         return runners.GraphPi(p, v);
       }),
       "No", "No", "U", "up to 7 (paper)"},
      {"WCOJ(GF/RM-like)",
       probe([&](const Graph& p, MatchVariant v) {
         return runners.Join(p, v);
       }),
       "Yes", "Yes", "U and D", "up to 32 (paper)"},
      {"BT-FSP(GuP/VEQ-like)",
       probe([&](const Graph& p, MatchVariant v) {
         return runners.BtFsp(p, v);
       }),
       "Yes", "Yes", "U and D", "up to 200 (paper)"},
      {"VF3-like",
       probe([&](const Graph& p, MatchVariant v) {
         return runners.Vf2(p, v);
       }),
       "Yes", "Yes", "U and D", "up to 2000 (paper)"},
      {"CSCE",
       probe([&](const Graph& p, MatchVariant v) {
         return runners.Csce(p, v);
       }),
       "Yes", "Yes", "U and D", "up to 2000"},
  };

  bench::BenchJson json("table3_capabilities");
  std::printf("Table III analogue: algorithm capabilities (probed live)\n");
  bench::PrintRule();
  std::printf("%-22s %-10s %-8s %-8s %-10s %-18s\n", "Algorithm", "Variants",
              "VLabels", "ELabels", "Direction", "Pattern size");
  bench::PrintRule();
  for (const Row& r : rows) {
    std::printf("%-22s %-10s %-8s %-8s %-10s %-18s\n", r.name,
                r.variants.c_str(), r.vlabels, r.elabels, r.directions,
                r.max_pattern);
    obs::JsonValue jrow = obs::JsonValue::Object();
    jrow.Set("algorithm", r.name);
    jrow.Set("variants", r.variants);
    jrow.Set("vertex_labels", r.vlabels);
    jrow.Set("edge_labels", r.elabels);
    jrow.Set("directions", r.directions);
    jrow.Set("max_pattern", r.max_pattern);
    json.AddRow(std::move(jrow));
  }
  bench::PrintRule();
  std::printf("Note: the BT/WCOJ/VF3/GraphPi rows are this repository's "
              "reimplementations of those technique families.\n");
  return 0;
}
