// Graph-database-style homomorphic queries on a directed heterogeneous
// graph (the Subcategory/Graphflow setting): match directed, vertex-
// and edge-labeled patterns and stream the first few bindings, the way
// a Cypher-like query engine would.
//
//   ./heterogeneous_queries

#include <cstdio>

#include "csce/csce.h"

using namespace csce;  // NOLINT: example brevity

namespace {

// "Category" schema labels for a readable query.
constexpr Label kUser = 1;
constexpr Label kPost = 2;
constexpr Label kTag = 3;
constexpr Label kAuthored = 1;
constexpr Label kLikes = 2;
constexpr Label kTagged = 3;

Graph BuildSocialGraph() {
  // A small deterministic social graph layered over random structure.
  Rng rng(2024);
  GraphBuilder b(/*directed=*/true);
  const uint32_t users = 200;
  const uint32_t posts = 400;
  const uint32_t tags = 20;
  VertexId first_user = b.AddVertices(users, kUser);
  VertexId first_post = b.AddVertices(posts, kPost);
  VertexId first_tag = b.AddVertices(tags, kTag);
  for (uint32_t p = 0; p < posts; ++p) {
    // One author per post, 0-2 tags, a handful of likes.
    b.AddEdge(first_user + static_cast<VertexId>(rng.Uniform(users)),
              first_post + p, kAuthored);
    for (uint64_t t = rng.Uniform(3); t > 0; --t) {
      b.AddEdge(first_post + p,
                first_tag + static_cast<VertexId>(rng.Uniform(tags)),
                kTagged);
    }
    for (uint64_t l = rng.Uniform(6); l > 0; --l) {
      b.AddEdge(first_user + static_cast<VertexId>(rng.Uniform(users)),
                first_post + p, kLikes);
    }
  }
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

// Query: MATCH (a:User)-[:AUTHORED]->(p:Post)<-[:LIKES]-(b:User),
//              (p)-[:TAGGED]->(t:Tag)
// (homomorphic: a and b may be the same user — self-likes count).
Graph BuildQuery() {
  GraphBuilder b(/*directed=*/true);
  VertexId a = b.AddVertex(kUser);
  VertexId p = b.AddVertex(kPost);
  VertexId liker = b.AddVertex(kUser);
  VertexId t = b.AddVertex(kTag);
  b.AddEdge(a, p, kAuthored);
  b.AddEdge(liker, p, kLikes);
  b.AddEdge(p, t, kTagged);
  Graph q;
  Status st = b.Build(&q);
  CSCE_CHECK(st.ok());
  return q;
}

}  // namespace

int main() {
  Graph g = BuildSocialGraph();
  Graph query = BuildQuery();
  std::printf("%s\n%s\n\n", StatsHeader().c_str(),
              FormatStatsRow("social", ComputeStats(g)).c_str());

  Ccsr index = Ccsr::Build(g);
  CsceMatcher matcher(&index);

  for (auto variant :
       {MatchVariant::kHomomorphic, MatchVariant::kEdgeInduced}) {
    MatchOptions options;
    options.variant = variant;
    MatchResult result;
    if (Status st = matcher.Match(query, options, &result); !st.ok()) {
      std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%-15s %llu results in %.3fms (%zu clusters read)\n",
                VariantName(variant),
                static_cast<unsigned long long>(result.embeddings),
                result.total_seconds * 1e3, result.clusters_read);
  }

  std::printf("\nfirst 5 homomorphic bindings (author, post, liker, tag):\n");
  MatchOptions options;
  options.variant = MatchVariant::kHomomorphic;
  MatchResult result;
  int shown = 0;
  Status st = matcher.MatchWithCallback(
      query, options,
      [&shown](std::span<const VertexId> m) {
        std::printf("  a=v%-5u p=v%-5u b=v%-5u t=v%u\n", m[0], m[1], m[2],
                    m[3]);
        return ++shown < 5;
      },
      &result);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
