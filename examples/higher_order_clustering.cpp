// Higher-order graph clustering (the paper's Section VII-G case study):
// cluster an EMAIL-EU-like communication network into departments,
// comparing plain edge-based label propagation against propagation on a
// graph whose edges are weighted by k-clique co-membership — the
// weights come from CSCE's clique enumeration.
//
//   ./higher_order_clustering [clique_size]

#include <cstdio>
#include <cstdlib>

#include "csce/csce.h"

using namespace csce;  // NOLINT: example brevity

int main(int argc, char** argv) {
  uint32_t clique_size = 8;
  if (argc > 1) clique_size = static_cast<uint32_t>(std::atoi(argv[1]));

  std::vector<uint32_t> departments;
  Graph email = datasets::EmailEu(&departments);
  std::printf("%s\n%s\n\n", StatsHeader().c_str(),
              FormatStatsRow("EMAIL-EU-like", ComputeStats(email)).c_str());

  ClusteringResult edge_result;
  if (Status st = EdgeClustering(email, /*seed=*/7, &edge_result); !st.ok()) {
    std::fprintf(stderr, "edge clustering failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  PairScores edge_scores = PairCountingF1(edge_result.assignment, departments);

  ClusteringResult motif_result;
  if (Status st = HigherOrderClustering(email, clique_size, /*seed=*/7,
                                        /*max_instances=*/5'000'000,
                                        &motif_result);
      !st.ok()) {
    std::fprintf(stderr, "higher-order clustering failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  PairScores motif_scores =
      PairCountingF1(motif_result.assignment, departments);

  std::printf("%-22s %8s %8s %8s %10s %12s\n", "method", "prec", "recall",
              "F1", "clusters", "motif time");
  std::printf("%-22s %8.3f %8.3f %8.3f %10u %12s\n", "edge-based",
              edge_scores.precision, edge_scores.recall, edge_scores.f1,
              edge_result.num_clusters, "-");
  char motif_name[32];
  std::snprintf(motif_name, sizeof(motif_name), "%u-clique weighted",
                clique_size);
  std::printf("%-22s %8.3f %8.3f %8.3f %10u %11.3fs\n", motif_name,
              motif_scores.precision, motif_scores.recall, motif_scores.f1,
              motif_result.num_clusters, motif_result.motif_seconds);
  std::printf("\n%llu %u-clique instances found in %.3fs\n",
              static_cast<unsigned long long>(motif_result.motif_instances),
              clique_size, motif_result.motif_seconds);
  std::printf("paper reference (real EMAIL-EU): edge F1 0.398 -> 8-clique "
              "F1 0.515, motif search 11.57s -> 0.39s with CSCE\n");
  return 0;
}
