// Motif census: count every connected 4-vertex graphlet (path, star,
// cycle, tailed triangle, diamond, clique) in a PPI network — the
// "higher-order organization" workload of Benson et al. that motivates
// the paper. Each motif is enumerated once per instance using symmetry
// restrictions, then reported with its per-instance count.
//
//   ./motif_census

#include <cstdio>

#include "csce/csce.h"

using namespace csce;  // NOLINT: example brevity

namespace {

Graph MakeGraphlet(std::initializer_list<std::pair<int, int>> edges) {
  GraphBuilder b(/*directed=*/false);
  b.AddVertices(4, kNoLabel);
  for (auto [x, y] : edges) b.AddEdge(x, y);
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

}  // namespace

int main() {
  Graph ppi = datasets::Yeast();
  std::printf("%s\n%s\n\n", StatsHeader().c_str(),
              FormatStatsRow("Yeast-like PPI", ComputeStats(ppi)).c_str());

  // Yeast is labeled; a census counts structure only, so strip labels.
  GraphBuilder unlabeled(/*directed=*/false);
  unlabeled.AddVertices(ppi.NumVertices(), kNoLabel);
  ppi.ForEachEdge(
      [&unlabeled](const Edge& e) { unlabeled.AddEdge(e.src, e.dst); });
  Graph g;
  CSCE_CHECK(unlabeled.Build(&g).ok());

  struct Motif {
    const char* name;
    Graph pattern;
  };
  Motif motifs[] = {
      {"path-4", MakeGraphlet({{0, 1}, {1, 2}, {2, 3}})},
      {"star-4", MakeGraphlet({{0, 1}, {0, 2}, {0, 3}})},
      {"cycle-4", MakeGraphlet({{0, 1}, {1, 2}, {2, 3}, {3, 0}})},
      {"tailed-tri", MakeGraphlet({{0, 1}, {1, 2}, {2, 0}, {0, 3}})},
      {"diamond", MakeGraphlet({{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 3}})},
      {"clique-4", MakeGraphlet({{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3},
                                 {2, 3}})},
  };

  Ccsr index = Ccsr::Build(g);
  CsceMatcher matcher(&index);
  std::printf("%-12s %8s %16s %12s %14s\n", "motif", "|Aut|", "instances",
              "time(ms)", "emb/instance");
  for (Motif& m : motifs) {
    SymmetryInfo symmetry = ComputeSymmetryBreaking(m.pattern);
    MatchOptions options;
    options.variant = MatchVariant::kEdgeInduced;
    options.restrictions = symmetry.restrictions;  // one per instance
    MatchResult result;
    Status st = matcher.Match(m.pattern, options, &result);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", m.name, st.ToString().c_str());
      return 1;
    }
    std::printf("%-12s %8llu %16llu %12.2f %14llu\n", m.name,
                static_cast<unsigned long long>(symmetry.automorphism_count),
                static_cast<unsigned long long>(result.embeddings),
                result.total_seconds * 1e3,
                static_cast<unsigned long long>(symmetry.automorphism_count));
  }
  std::printf("\n(instances are automorphism classes; multiply by |Aut| "
              "for raw embedding counts)\n");
  return 0;
}
