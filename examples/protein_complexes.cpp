// Protein-complex search: the paper's motivating workload (Section I).
// DPCMNE-style complexes are large subgraphs (8+ vertices); this
// example samples complex-shaped patterns from a DIP-like
// protein-protein interaction network and finds every occurrence,
// comparing CSCE against the backtracking baseline.
//
//   ./protein_complexes [max_pattern_size]

#include <cstdio>
#include <cstdlib>

#include "csce/csce.h"

using namespace csce;  // NOLINT: example brevity

int main(int argc, char** argv) {
  uint32_t max_size = 16;
  if (argc > 1) max_size = static_cast<uint32_t>(std::atoi(argv[1]));

  Graph ppi = datasets::Dip();
  GraphStats stats = ComputeStats(ppi);
  std::printf("%s\n%s\n", StatsHeader().c_str(),
              FormatStatsRow("DIP-like PPI", stats).c_str());

  Ccsr index = Ccsr::Build(ppi);
  CsceMatcher csce(&index);
  BacktrackingMatcher baseline(&ppi);

  std::printf("\n%8s %8s %14s %12s %12s %10s\n", "size", "edges",
              "embeddings", "csce(s)", "baseline(s)", "speedup");
  for (uint32_t size = 8; size <= max_size; size += 4) {
    for (int variant_id = 0; variant_id < 2; ++variant_id) {
      // Complex-shaped patterns: dense connected regions, the shape of
      // MIPS/DPCMNE protein complexes.
      Rng rng(size * 100 + variant_id);
      Graph complex_pattern;
      Status st = SampleDensePattern(ppi, size, /*min_avg_degree=*/3.0, rng,
                                     &complex_pattern);
      if (!st.ok()) {
        std::fprintf(stderr, "sampling failed: %s\n", st.ToString().c_str());
        continue;
      }

      MatchOptions options;
      options.variant = MatchVariant::kEdgeInduced;
      options.time_limit_seconds = 20;
      MatchResult ours;
      if (st = csce.Match(complex_pattern, options, &ours); !st.ok()) {
        std::fprintf(stderr, "csce failed: %s\n", st.ToString().c_str());
        return 1;
      }

      BaselineOptions bopts;
      bopts.variant = MatchVariant::kEdgeInduced;
      bopts.time_limit_seconds = 20;
      BaselineResult theirs;
      if (st = baseline.Match(complex_pattern, bopts, &theirs); !st.ok()) {
        std::fprintf(stderr, "baseline failed: %s\n", st.ToString().c_str());
        return 1;
      }

      std::printf("%8u %8llu %14llu %12.4f %12.4f %9.1fx%s\n", size,
                  static_cast<unsigned long long>(complex_pattern.NumEdges()),
                  static_cast<unsigned long long>(ours.embeddings),
                  ours.total_seconds, theirs.total_seconds,
                  ours.total_seconds > 0
                      ? theirs.total_seconds / ours.total_seconds
                      : 0.0,
                  ours.timed_out || theirs.timed_out ? "  (timeout)" : "");
      if (!ours.timed_out && !theirs.timed_out &&
          ours.embeddings != theirs.embeddings) {
        std::fprintf(stderr, "COUNT MISMATCH: %llu vs %llu\n",
                     static_cast<unsigned long long>(ours.embeddings),
                     static_cast<unsigned long long>(theirs.embeddings));
        return 1;
      }
    }
  }
  return 0;
}
