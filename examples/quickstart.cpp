// Quickstart: build a small heterogeneous graph, index it with CCSR,
// and count matches of a pattern under all three SM variants.
//
//   ./quickstart
//
// Walks through the library's core flow: GraphBuilder -> Ccsr::Build
// (offline) -> CsceMatcher::Match (online), plus persisting the CCSR
// artifact to disk and loading it back.

#include <cstdio>

#include "csce/csce.h"

using namespace csce;  // NOLINT: example brevity

namespace {

constexpr Label kProtein = 1;
constexpr Label kComplex = 2;
constexpr Label kSite = 3;

Graph BuildDataGraph() {
  GraphBuilder b(/*directed=*/false);
  // A toy interaction network: two protein "hubs", each with binding
  // sites; one pair of hubs also shares a complex.
  VertexId p1 = b.AddVertex(kProtein);
  VertexId p2 = b.AddVertex(kProtein);
  VertexId p3 = b.AddVertex(kProtein);
  VertexId c1 = b.AddVertex(kComplex);
  b.AddEdge(p1, p2);
  b.AddEdge(p2, p3);
  b.AddEdge(p1, c1);
  b.AddEdge(p2, c1);
  for (int i = 0; i < 3; ++i) {
    VertexId s = b.AddVertex(kSite);
    b.AddEdge(p1, s);
  }
  for (int i = 0; i < 2; ++i) {
    VertexId s = b.AddVertex(kSite);
    b.AddEdge(p3, s);
  }
  Graph g;
  Status st = b.Build(&g);
  CSCE_CHECK(st.ok());
  return g;
}

Graph BuildPattern() {
  // Pattern: protein - protein edge where the first protein also binds
  // a site.  (A "partially characterized interaction".)
  GraphBuilder b(/*directed=*/false);
  VertexId a = b.AddVertex(kProtein);
  VertexId c = b.AddVertex(kProtein);
  VertexId s = b.AddVertex(kSite);
  b.AddEdge(a, c);
  b.AddEdge(a, s);
  Graph p;
  Status st = b.Build(&p);
  CSCE_CHECK(st.ok());
  return p;
}

}  // namespace

int main() {
  Graph g = BuildDataGraph();
  Graph pattern = BuildPattern();
  std::printf("data graph: %u vertices, %llu edges, %u labels\n",
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()),
              g.VertexLabelCount());

  // Offline: cluster the graph into CCSR. The raw graph can be dropped.
  Ccsr index = Ccsr::Build(g);
  std::printf("ccsr: %zu clusters, %zu compressed bytes\n",
              index.NumClusters(), index.CompressedSizeBytes());

  // The index is a persistent artifact.
  const char* path = "/tmp/quickstart.ccsr";
  if (Status st = SaveCcsrToFile(index, path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Ccsr loaded;
  if (Status st = LoadCcsrFromFile(path, &loaded); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Online: match under each variant.
  CsceMatcher matcher(&loaded);
  for (auto variant :
       {MatchVariant::kEdgeInduced, MatchVariant::kVertexInduced,
        MatchVariant::kHomomorphic}) {
    MatchOptions options;
    options.variant = variant;
    MatchResult result;
    if (Status st = matcher.Match(pattern, options, &result); !st.ok()) {
      std::fprintf(stderr, "match failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%-15s %llu embeddings  (read %.3fms, plan %.3fms, "
                "enumerate %.3fms)\n",
                VariantName(variant),
                static_cast<unsigned long long>(result.embeddings),
                result.read_seconds * 1e3, result.plan_seconds * 1e3,
                result.enumerate_seconds * 1e3);
  }

  // Enumerate concrete embeddings through the callback API.
  std::printf("edge-induced embeddings (pattern vertex -> data vertex):\n");
  MatchOptions options;
  MatchResult result;
  Status st = matcher.MatchWithCallback(
      pattern, options,
      [&pattern](std::span<const VertexId> mapping) {
        std::printf("  {");
        for (VertexId u = 0; u < pattern.NumVertices(); ++u) {
          std::printf("%su%u->v%u", u ? ", " : "", u, mapping[u]);
        }
        std::printf("}\n");
        return true;
      },
      &result);
  if (!st.ok()) {
    std::fprintf(stderr, "match failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
